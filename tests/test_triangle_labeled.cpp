// Tests for the vertex-labeled triangle census (§V, Def. 12–14, Fig. 6).
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "triangle/bruteforce.hpp"
#include "triangle/count.hpp"
#include "triangle/labeled.hpp"
#include "triangle/support.hpp"

namespace {

using namespace kronotri;
using triangle::Labeling;

Labeling all_same(vid n) {
  Labeling lab;
  lab.num_labels = 1;
  lab.label.assign(n, 0);
  return lab;
}

TEST(Labeling, Validation) {
  Labeling lab;
  lab.num_labels = 2;
  lab.label = {0, 1, 0};
  EXPECT_NO_THROW(lab.validate(3));
  EXPECT_THROW(lab.validate(4), std::invalid_argument);
  lab.label[1] = 5;
  EXPECT_THROW(lab.validate(3), std::invalid_argument);
}

TEST(Labeling, PairIndexIsUpperTriangular) {
  triangle::LabeledCensus c;
  c.num_labels = 3;
  // (0,0) (0,1) (0,2) (1,1) (1,2) (2,2) → 0..5, symmetric in arguments.
  EXPECT_EQ(c.pair_index(0, 0), 0u);
  EXPECT_EQ(c.pair_index(0, 1), 1u);
  EXPECT_EQ(c.pair_index(1, 0), 1u);
  EXPECT_EQ(c.pair_index(0, 2), 2u);
  EXPECT_EQ(c.pair_index(1, 1), 3u);
  EXPECT_EQ(c.pair_index(2, 1), 4u);
  EXPECT_EQ(c.pair_index(2, 2), 5u);
}

TEST(LabelFilter, KeepsOnlyMatchingBlock) {
  const Graph g = gen::clique(4);
  Labeling lab;
  lab.num_labels = 2;
  lab.label = {0, 0, 1, 1};
  const auto block = triangle::label_filtered(g.matrix(), lab, 0, 1);
  EXPECT_EQ(block.nnz(), 4u);  // rows {0,1} × cols {2,3}
  EXPECT_TRUE(block.contains(0, 2));
  EXPECT_TRUE(block.contains(1, 3));
  EXPECT_FALSE(block.contains(2, 0));
  const auto cols = triangle::col_filtered(g.matrix(), lab, 1);
  EXPECT_EQ(cols.nnz(), 6u);  // all rows, cols {2,3}, minus diagonal absences
}

TEST(LabeledCensus, SingleLabelReducesToUnlabeled) {
  const Graph g = kt_test::random_undirected(20, 0.3, 7);
  const Labeling lab = all_same(20);
  const auto t = triangle::labeled_vertex_participation(g, lab, 0, 0, 0);
  EXPECT_EQ(t, triangle::participation_vertices(g));
  const auto d = triangle::labeled_edge_participation(g, lab, 0, 0, 0);
  EXPECT_TRUE(d == triangle::edge_support_masked(g));
}

TEST(LabeledCensus, RejectsSelfLoops) {
  const Graph g = gen::clique(3).with_all_self_loops();
  const Labeling lab = all_same(3);
  EXPECT_THROW(triangle::labeled_vertex_participation(g, lab, 0, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(triangle::labeled_census(g, lab), std::invalid_argument);
}

TEST(LabeledCensus, RainbowTriangle) {
  const Graph k3 = gen::clique(3);
  Labeling lab;
  lab.num_labels = 3;
  lab.label = {0, 1, 2};
  // Vertex 0 (label 0) has the other two labeled {1,2}.
  const auto t012 = triangle::labeled_vertex_participation(k3, lab, 0, 1, 2);
  EXPECT_EQ(t012[0], 1u);
  EXPECT_EQ(t012[1], 0u);
  EXPECT_EQ(t012[2], 0u);
  // Wrong center label: zero everywhere.
  const auto t112 = triangle::labeled_vertex_participation(k3, lab, 1, 1, 2);
  for (const count_t v : t112) EXPECT_EQ(v, 0u);
  // Edge (1,0): center labels (q2=f(1)=1 read at row, q1=f(0)=0), third
  // vertex labeled 2.
  const auto d = triangle::labeled_edge_participation(k3, lab, 0, 1, 2);
  EXPECT_EQ(d.at(1, 0), 1u);
  EXPECT_EQ(d.nnz(), 1u);
}

class LabeledProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LabeledProperty, FormulaMatchesBruteForce) {
  const std::uint32_t big_l = 3;
  const Graph g = kt_test::random_undirected(16, 0.3, GetParam());
  const Labeling lab = gen::random_labels(16, big_l, GetParam() + 1);
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        EXPECT_EQ(triangle::labeled_vertex_participation(g, lab, q1, q2, q3),
                  triangle::brute::labeled_vertex_participation(g, lab, q1,
                                                                q2, q3))
            << "type (" << q1 << "," << q2 << "," << q3 << ")";
      }
    }
  }
}

TEST_P(LabeledProperty, EdgeFormulaMatchesBruteForce) {
  const std::uint32_t big_l = 3;
  const Graph g = kt_test::random_undirected(14, 0.3, GetParam() + 40);
  const Labeling lab = gen::random_labels(14, big_l, GetParam() + 41);
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = 0; q3 < big_l; ++q3) {
        kt_test::expect_matrix_eq(
            triangle::labeled_edge_participation(g, lab, q1, q2, q3),
            triangle::brute::labeled_edge_participation(g, lab, q1, q2, q3));
      }
    }
  }
}

TEST_P(LabeledProperty, CensusMatchesPerTypeFormulas) {
  const std::uint32_t big_l = 3;
  const Graph g = kt_test::random_undirected(15, 0.3, GetParam() + 80);
  const Labeling lab = gen::random_labels(15, big_l, GetParam() + 81);
  const auto census = triangle::labeled_census(g, lab);
  // Vertex side: census pair counts at v equal the Def. 13 values for the
  // type whose center label is f(v).
  for (std::uint32_t qa = 0; qa < big_l; ++qa) {
    for (std::uint32_t qb = qa; qb < big_l; ++qb) {
      const auto& vec = census.at_vertices[census.pair_index(qa, qb)];
      for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
        const auto expected =
            triangle::labeled_vertex_participation(g, lab, q1, qa, qb);
        for (vid v = 0; v < g.num_vertices(); ++v) {
          if (lab.label[v] == q1) {
            EXPECT_EQ(vec[v], expected[v]) << "v=" << v;
          }
        }
      }
    }
  }
  // Edge side: summing the per-third-label matrices over q3 gives Δ.
  const auto delta = triangle::edge_support_masked(g);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (const vid v : g.neighbors(u)) {
      count_t sum = 0;
      for (std::uint32_t q3 = 0; q3 < big_l; ++q3) {
        sum += census.at_edges[q3].at(u, v);
      }
      EXPECT_EQ(sum, delta.at(u, v));
    }
  }
}

TEST_P(LabeledProperty, TypesPartitionVertexTriangles) {
  // Σ over unordered pairs {q2,q3} of t^{(f(v),q2,q3)}[v] = t[v].
  const std::uint32_t big_l = 4;
  const Graph g = kt_test::random_undirected(15, 0.3, GetParam() + 150);
  const Labeling lab = gen::random_labels(15, big_l, GetParam() + 151);
  const auto t = triangle::participation_vertices(g);
  std::vector<count_t> acc(g.num_vertices(), 0);
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        const auto part =
            triangle::labeled_vertex_participation(g, lab, q1, q2, q3);
        for (vid v = 0; v < g.num_vertices(); ++v) acc[v] += part[v];
      }
    }
  }
  EXPECT_EQ(acc, t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabeledProperty,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(LabeledCensus, MemoryGuardClampIsBitIdentical) {
  // A budget that fits exactly one worker's accumulators forces the clamp
  // path (with its one-line warning); counts are exact integer sums, so the
  // clamped census must equal the unclamped one.
  const std::uint32_t big_l = 4;
  const Graph g = kt_test::random_undirected(30, 0.3, 9);
  const Labeling lab = gen::random_labels(30, big_l, 10);
  const auto wide = triangle::labeled_census(g, lab);
  const std::size_t npairs = static_cast<std::size_t>(big_l) * (big_l + 1) / 2;
  const std::size_t one_worker =
      (npairs * g.num_vertices() +
       static_cast<std::size_t>(big_l) * g.num_undirected_edges()) *
      sizeof(count_t);
  const auto clamped = triangle::labeled_census(g, lab, one_worker);
  ASSERT_EQ(clamped.at_vertices.size(), wide.at_vertices.size());
  for (std::size_t i = 0; i < wide.at_vertices.size(); ++i) {
    EXPECT_EQ(clamped.at_vertices[i], wide.at_vertices[i]);
  }
  ASSERT_EQ(clamped.at_edges.size(), wide.at_edges.size());
  for (std::size_t i = 0; i < wide.at_edges.size(); ++i) {
    EXPECT_TRUE(clamped.at_edges[i] == wide.at_edges[i]);
  }
  // A zero budget still runs (floor of one worker).
  const auto floor = triangle::labeled_census(g, lab, 1);
  EXPECT_EQ(floor.at_vertices[0], wide.at_vertices[0]);
}

}  // namespace
