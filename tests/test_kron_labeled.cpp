// Thm 6 / Thm 7 validated end-to-end: labeled censuses on a materialized
// C = A ⊗ B (labels inherited from A) must match the factor-side formulas.
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/labeled.hpp"
#include "kron/product.hpp"
#include "triangle/bruteforce.hpp"

namespace {

using namespace kronotri;
using triangle::Labeling;

TEST(KronLabeling, InheritsFromLeftFactor) {
  Labeling la;
  la.num_labels = 3;
  la.label = {2, 0, 1};
  const auto lc = kron::kron_labeling(la, 4);
  ASSERT_EQ(lc.label.size(), 12u);
  ASSERT_EQ(lc.num_labels, 3u);
  for (vid p = 0; p < 12; ++p) {
    EXPECT_EQ(lc.label[p], la.label[p / 4]);
  }
}

class Thm6Sweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(Thm6Sweep, LabeledVertexParticipationTransfers) {
  const auto [seed, b_loops] = GetParam();
  const std::uint32_t big_l = 3;
  const Graph a = kt_test::random_undirected(6, 0.45, seed);
  const Labeling la = gen::random_labels(6, big_l, seed + 5);
  const Graph b =
      kt_test::random_undirected(4, 0.5, seed + 6, b_loops ? 0.5 : 0.0);
  const Graph c = kron::kron_graph(a, b);
  const Labeling lc = kron::kron_labeling(la, b.num_vertices());

  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        const auto formula =
            kron::labeled_vertex_triangles(a, la, b, q1, q2, q3).expand();
        const auto direct =
            triangle::brute::labeled_vertex_participation(c, lc, q1, q2, q3);
        EXPECT_EQ(formula, direct)
            << "type (" << q1 << "," << q2 << "," << q3 << ")";
      }
    }
  }
}

TEST_P(Thm6Sweep, LabeledEdgeParticipationTransfers) {
  const auto [seed, b_loops] = GetParam();
  const std::uint32_t big_l = 2;
  const Graph a = kt_test::random_undirected(5, 0.5, seed + 100);
  const Labeling la = gen::random_labels(5, big_l, seed + 105);
  const Graph b =
      kt_test::random_undirected(4, 0.5, seed + 106, b_loops ? 0.5 : 0.0);
  const Graph c = kron::kron_graph(a, b);
  const Labeling lc = kron::kron_labeling(la, b.num_vertices());

  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = 0; q3 < big_l; ++q3) {
        const auto formula =
            kron::labeled_edge_triangles(a, la, b, q1, q2, q3).expand();
        const auto direct =
            triangle::brute::labeled_edge_participation(c, lc, q1, q2, q3);
        kt_test::expect_matrix_eq(direct, formula, "labeled Δ");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoops, Thm6Sweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 5),
                       ::testing::Bool()));

TEST(Thm6, PreconditionsEnforced) {
  const Graph a = kt_test::random_undirected(4, 0.5, 1);
  const Labeling la = gen::random_labels(4, 2, 2);
  const Graph b_directed = kt_test::random_directed(3, 0.5, 3);
  EXPECT_THROW(kron::labeled_vertex_triangles(a, la, b_directed, 0, 0, 0),
               std::invalid_argument);
  const Graph a_loops = a.with_all_self_loops();
  const Graph b = kt_test::random_undirected(3, 0.5, 4);
  EXPECT_THROW(kron::labeled_vertex_triangles(a_loops, la, b, 0, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(kron::labeled_edge_triangles(a_loops, la, b, 0, 0, 0),
               std::invalid_argument);
}

TEST(Thm6, RainbowTriangleTimesClique) {
  // A = rainbow K3, B = K3: type (q1=0,{1,2}) lives only at B-copies of A's
  // vertex 0, each with t = 1·diag(B³) = 2.
  const Graph a = gen::clique(3);
  Labeling la;
  la.num_labels = 3;
  la.label = {0, 1, 2};
  const Graph b = gen::clique(3);
  const auto expr = kron::labeled_vertex_triangles(a, la, b, 0, 1, 2);
  const auto v = expr.expand();
  for (vid p = 0; p < 9; ++p) {
    EXPECT_EQ(v[p], p < 3 ? 2u : 0u) << "p=" << p;
  }
}

}  // namespace
