// Unit tests for util::journal — the crash-safe primitives under
// `run --journal/--resume` and `serve --state`: CRC-64/XZ, frame
// encode/decode with tail classification, atomic file replacement, and
// the append-only Journal (including its deterministic torn-write mode).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "util/journal.hpp"

namespace {

using namespace kronotri;
namespace jn = util::journal;

std::string test_path(const std::string& tag) {
  return "/tmp/kronotri_jt" + std::to_string(::getpid()) + "_" + tag;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& tag) : path(test_path(tag)) {
    ::unlink(path.c_str());
  }
  ~TempFile() { ::unlink(path.c_str()); }
};

TEST(Crc64, PinnedCheckValue) {
  // The CRC-64/XZ check value — if this moves, the on-disk format moved.
  EXPECT_EQ(jn::crc64("123456789"), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64, EmptyAndSensitivity) {
  EXPECT_EQ(jn::crc64(""), 0u);
  EXPECT_NE(jn::crc64("kronotri"), jn::crc64("kronotrj"));
  const std::string with_nul("a\0b", 3);
  EXPECT_NE(jn::crc64(with_nul), jn::crc64("ab"));
}

TEST(Frames, RoundTripSingle) {
  const std::string payload = "{\"type\":\"plan\",\"units\":7}";
  const std::string frame = jn::encode_frame(payload);
  EXPECT_EQ(frame.size(), payload.size() + jn::kFrameOverhead);
  const jn::Decoded dec = jn::decode_frames(frame);
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kClean);
  ASSERT_EQ(dec.frames.size(), 1u);
  EXPECT_EQ(dec.frames[0], payload);
  EXPECT_EQ(dec.valid_bytes, frame.size());
}

TEST(Frames, RoundTripMany) {
  std::string stream;
  for (int i = 0; i < 20; ++i) {
    stream += jn::encode_frame("payload-" + std::to_string(i));
  }
  const jn::Decoded dec = jn::decode_frames(stream);
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kClean);
  ASSERT_EQ(dec.frames.size(), 20u);
  EXPECT_EQ(dec.frames[7], "payload-7");
  EXPECT_EQ(dec.valid_bytes, stream.size());
}

TEST(Frames, EmptyPayloadIsAFrame) {
  const jn::Decoded dec = jn::decode_frames(jn::encode_frame(""));
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kClean);
  ASSERT_EQ(dec.frames.size(), 1u);
  EXPECT_EQ(dec.frames[0], "");
}

TEST(Frames, TruncatedTailKeepsValidPrefix) {
  const std::string good = jn::encode_frame("first");
  std::string stream = good + jn::encode_frame("second-gets-cut");
  // cut == good.size() is a CLEAN end (exact frame boundary), so start one
  // byte in: every partial suffix of the second frame must classify as
  // truncation while preserving the first frame.
  for (std::size_t cut = good.size() + 1; cut < stream.size(); ++cut) {
    const jn::Decoded dec = jn::decode_frames(stream.substr(0, cut));
    EXPECT_EQ(dec.tail, jn::Decoded::Tail::kTruncated) << "cut=" << cut;
    ASSERT_EQ(dec.frames.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(dec.frames[0], "first");
    EXPECT_EQ(dec.valid_bytes, good.size());
  }
}

TEST(Frames, FlippedCrcByteIsCorrupt) {
  const std::string good = jn::encode_frame("first");
  std::string stream = good + jn::encode_frame("second");
  stream.back() ^= 0x01;  // last CRC byte of the second frame
  const jn::Decoded dec = jn::decode_frames(stream);
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kCorrupt);
  ASSERT_EQ(dec.frames.size(), 1u);
  EXPECT_EQ(dec.frames[0], "first");
  EXPECT_EQ(dec.valid_bytes, good.size());
}

TEST(Frames, FlippedPayloadByteIsCorrupt) {
  std::string frame = jn::encode_frame("sensitive-payload");
  frame[jn::kFrameOverhead - 8 + 3] ^= 0x40;  // a payload byte
  const jn::Decoded dec = jn::decode_frames(frame);
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kCorrupt);
  EXPECT_TRUE(dec.frames.empty());
  EXPECT_EQ(dec.valid_bytes, 0u);
}

TEST(Frames, BadMagicIsCorrupt) {
  const jn::Decoded dec =
      jn::decode_frames("XXXXjunk-that-is-long-enough-to-hold-a-header");
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kCorrupt);
  EXPECT_TRUE(dec.frames.empty());
}

TEST(Frames, LyingLengthFieldIsTruncatedNotARead) {
  // A length field pointing far past the end must classify as damage, not
  // crash or over-read.
  std::string frame = jn::encode_frame("x");
  frame[4] = '\xFF';  // low byte of the u64 LE length
  const jn::Decoded dec = jn::decode_frames(frame);
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kTruncated);
  EXPECT_TRUE(dec.frames.empty());
}

TEST(AtomicWrite, ReplacesWholeFile) {
  TempFile f("atomic");
  jn::atomic_write_file(f.path, "first contents");
  EXPECT_EQ(jn::read_file(f.path).value_or(""), "first contents");
  jn::atomic_write_file(f.path, "second");
  EXPECT_EQ(jn::read_file(f.path).value_or(""), "second");
}

TEST(AtomicWrite, MissingFileReadsAsNullopt) {
  EXPECT_FALSE(jn::read_file(test_path("never_written")).has_value());
}

TEST(EnsureDir, CreatesNestedAndTolersatesExisting) {
  const std::string root = test_path("dirs");
  const std::string nested = root + "/a/b/c";
  jn::ensure_dir(nested);
  jn::ensure_dir(nested);  // idempotent
  EXPECT_TRUE(jn::read_file(nested + "/probe") == std::nullopt);
  jn::atomic_write_file(nested + "/probe", "x");
  EXPECT_EQ(jn::read_file(nested + "/probe").value_or(""), "x");
  ::unlink((nested + "/probe").c_str());
  ::rmdir(nested.c_str());
  ::rmdir((root + "/a/b").c_str());
  ::rmdir((root + "/a").c_str());
  ::rmdir(root.c_str());
}

TEST(EnsureDir, FileInTheWayThrows) {
  TempFile f("dir_conflict");
  jn::atomic_write_file(f.path, "not a directory");
  EXPECT_THROW(jn::ensure_dir(f.path), std::runtime_error);
}

TEST(Journal, AppendAndReadBack) {
  TempFile f("wal");
  {
    jn::Journal j;
    j.open(f.path);
    EXPECT_TRUE(j.is_open());
    j.append("one");
    j.append("two");
  }
  {
    // Reopen appends, never truncates.
    jn::Journal j;
    j.open(f.path);
    j.append("three");
  }
  const jn::Decoded dec = jn::Journal::read(f.path);
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kClean);
  ASSERT_EQ(dec.frames.size(), 3u);
  EXPECT_EQ(dec.frames[0], "one");
  EXPECT_EQ(dec.frames[2], "three");
}

TEST(Journal, MissingFileIsEmptyJournal) {
  const jn::Decoded dec = jn::Journal::read(test_path("no_such_journal"));
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kClean);
  EXPECT_TRUE(dec.frames.empty());
}

TEST(Journal, AppendOnClosedThrows) {
  jn::Journal j;
  EXPECT_THROW(j.append("x"), std::logic_error);
}

TEST(Journal, TornAppendLeavesPrefixUsable) {
  TempFile f("torn");
  jn::Journal j;
  j.open(f.path);
  j.append("durable");
  j.append_torn("never-finished", 7);  // half a header, no fsync
  j.close();
  const jn::Decoded dec = jn::Journal::read(f.path);
  EXPECT_EQ(dec.tail, jn::Decoded::Tail::kTruncated);
  ASSERT_EQ(dec.frames.size(), 1u);
  EXPECT_EQ(dec.frames[0], "durable");
  // The recovery protocol: truncate to the valid prefix, append again.
  ASSERT_EQ(::truncate(f.path.c_str(),
                       static_cast<off_t>(dec.valid_bytes)),
            0);
  jn::Journal j2;
  j2.open(f.path);
  j2.append("after-recovery");
  j2.close();
  const jn::Decoded dec2 = jn::Journal::read(f.path);
  EXPECT_EQ(dec2.tail, jn::Decoded::Tail::kClean);
  ASSERT_EQ(dec2.frames.size(), 2u);
  EXPECT_EQ(dec2.frames[1], "after-recovery");
}

}  // namespace
