// Census-determinism suite: the atomic-free engine must produce
// bit-identical totals, per-vertex and per-edge counts at every thread
// count (counts are exact integer sums of thread-local buffers), and match
// the dense brute-force reference on random ER graphs with and without
// self loops.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "helpers.hpp"
#include "triangle/bruteforce.hpp"
#include "triangle/census.hpp"
#include "triangle/count.hpp"
#include "triangle/labeled.hpp"
#include "triangle/support.hpp"
#include "truss/decompose.hpp"

namespace {

using namespace kronotri;

/// Runs `fn` under each thread count and returns the collected results.
template <typename Fn>
auto with_thread_counts(Fn&& fn) {
  std::vector<decltype(fn())> results;
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (const int t : {1, 2, 8}) {
    omp_set_num_threads(t);
    results.push_back(fn());
  }
  omp_set_num_threads(saved);
#else
  results.push_back(fn());
#endif
  return results;
}

triangle::Labeling three_labels(vid n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  triangle::Labeling lab;
  lab.num_labels = 3;
  lab.label.resize(n);
  for (auto& q : lab.label) {
    q = static_cast<std::uint32_t>(rng() % 3);
  }
  return lab;
}

class CensusDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CensusDeterminism, AnalyzeIdenticalAcrossThreadCounts) {
  for (const double loop_p : {0.0, 0.3}) {
    const Graph g = kt_test::random_undirected(60, 0.15, GetParam(), loop_p);
    const auto runs = with_thread_counts([&] { return triangle::analyze(g); });
    const auto& ref = runs.front();
    EXPECT_EQ(ref.total, triangle::brute::total(g));
    EXPECT_EQ(ref.per_vertex, triangle::brute::vertex_participation(g));
    kt_test::expect_matrix_eq(ref.per_edge,
                              triangle::brute::edge_participation(g),
                              "per-edge vs brute force");
    for (const auto& run : runs) {
      EXPECT_EQ(run.total, ref.total);
      EXPECT_EQ(run.per_vertex, ref.per_vertex);
      EXPECT_TRUE(run.per_edge == ref.per_edge);
      EXPECT_EQ(run.wedge_checks, ref.wedge_checks);
    }
  }
}

TEST_P(CensusDeterminism, EdgeSupportIdenticalAcrossThreadCounts) {
  const Graph g = kt_test::random_undirected(50, 0.2, GetParam() + 40, 0.2);
  const auto runs =
      with_thread_counts([&] { return triangle::edge_support_masked(g); });
  for (const auto& run : runs) EXPECT_TRUE(run == runs.front());
  EXPECT_TRUE(runs.front() == triangle::analyze(g).per_edge);
}

TEST_P(CensusDeterminism, LabeledCensusIdenticalAcrossThreadCounts) {
  const Graph g = kt_test::random_undirected(40, 0.2, GetParam() + 80);
  const triangle::Labeling lab = three_labels(g.num_vertices(), GetParam() + 81);
  const auto runs =
      with_thread_counts([&] { return triangle::labeled_census(g, lab); });
  const auto& ref = runs.front();
  for (const auto& run : runs) {
    ASSERT_EQ(run.at_vertices.size(), ref.at_vertices.size());
    for (std::size_t i = 0; i < ref.at_vertices.size(); ++i) {
      EXPECT_EQ(run.at_vertices[i], ref.at_vertices[i]);
    }
    ASSERT_EQ(run.at_edges.size(), ref.at_edges.size());
    for (std::size_t i = 0; i < ref.at_edges.size(); ++i) {
      EXPECT_TRUE(run.at_edges[i] == ref.at_edges[i]);
    }
  }
}

TEST_P(CensusDeterminism, TrussIdenticalAcrossThreadCounts) {
  const Graph g = kt_test::random_undirected(45, 0.25, GetParam() + 120);
  const auto runs = with_thread_counts([&] { return truss::decompose(g); });
  for (const auto& run : runs) {
    EXPECT_TRUE(run.truss_number == runs.front().truss_number);
    EXPECT_EQ(run.max_truss, runs.front().max_truss);
  }
}

TEST_P(CensusDeterminism, ScalarsIdenticalAcrossThreadCounts) {
  const Graph g = kt_test::random_undirected(55, 0.18, GetParam() + 160, 0.1);
  const auto totals =
      with_thread_counts([&] { return triangle::count_total(g); });
  const auto parts =
      with_thread_counts([&] { return triangle::participation_vertices(g); });
  for (const auto& t : totals) EXPECT_EQ(t, triangle::brute::total(g));
  for (const auto& p : parts) EXPECT_EQ(p, parts.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CensusDeterminism,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(EdgeIdMap, CoversEverySlotSymmetrically) {
  const Graph g = kt_test::random_undirected(30, 0.25, 7, 0.2);
  const triangle::CensusWorkspace ws(g);
  const BoolCsr& s = ws.structure();
  const auto& ids = ws.edge_ids();
  ASSERT_EQ(ids.slot_id.size(), s.nnz());
  EXPECT_EQ(ids.num_edges() * 2, s.nnz());  // loop-free symmetric structure
  for (vid u = 0; u < s.rows(); ++u) {
    const auto row = s.row_cols(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const vid v = row[k];
      const esz id = ids.slot_id[s.row_ptr()[u] + k];
      ASSERT_LT(id, ids.num_edges());
      EXPECT_EQ(id, ids.slot_id[s.find(v, u)]) << "mirror id mismatch";
      const auto [x, y] = ids.ends[id];
      EXPECT_EQ(std::min(u, v), x);
      EXPECT_EQ(std::max(u, v), y);
    }
  }
}

TEST(EdgeIdMap, MirrorScattersBothDirections) {
  const Graph g = kt_test::random_undirected(25, 0.3, 11);
  const triangle::CensusWorkspace ws(g);
  std::vector<count_t> per_edge(ws.num_edges());
  for (esz e = 0; e < ws.num_edges(); ++e) per_edge[e] = e + 1;
  const CountCsr m = ws.mirror_edge_counts(per_edge);
  for (esz e = 0; e < ws.num_edges(); ++e) {
    const auto [u, v] = ws.edge_ids().ends[e];
    EXPECT_EQ(m.at(u, v), e + 1);
    EXPECT_EQ(m.at(v, u), e + 1);
  }
}

TEST(CensusWorkspace, DirectedInputThrows) {
  const Graph d = Graph::from_edges(3, {{{0, 1}, {1, 2}}}, false);
  EXPECT_THROW(triangle::CensusWorkspace ws(d), std::invalid_argument);
}

}  // namespace
