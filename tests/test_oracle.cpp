// TriangleOracle facade tests — the generation-time ground-truth interface.
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/oracle.hpp"
#include "kron/product.hpp"
#include "kron/stream.hpp"
#include "triangle/count.hpp"
#include "triangle/support.hpp"

namespace {

using namespace kronotri;

class OracleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {
 protected:
  static std::pair<double, double> loops(int regime) {
    switch (regime) {
      case 0: return {0.0, 0.0};
      case 1: return {0.0, 0.5};
      case 2: return {0.5, 0.0};
      default: return {0.5, 0.5};
    }
  }
};

TEST_P(OracleSweep, MatchesDirectComputationOnMaterializedProduct) {
  const auto [seed, regime] = GetParam();
  const auto [la, lb] = loops(regime);
  const Graph a = kt_test::random_undirected(6, 0.45, seed, la);
  const Graph b = kt_test::random_undirected(5, 0.5, seed + 1, lb);
  const kron::TriangleOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);

  EXPECT_EQ(oracle.num_vertices(), c.num_vertices());
  EXPECT_EQ(oracle.num_undirected_edges(), c.num_undirected_edges());
  EXPECT_EQ(oracle.total_triangles(), triangle::count_total(c));

  const auto t = triangle::participation_vertices(c);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(oracle.vertex_triangles(p), t[p]);
    EXPECT_EQ(oracle.degree(p), c.nonloop_degree(p));
  }
  const auto delta = triangle::edge_support_masked(c);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    for (vid q = 0; q < c.num_vertices(); ++q) {
      const auto val = oracle.edge_triangles(p, q);
      if (c.has_edge(p, q)) {
        ASSERT_TRUE(val.has_value());
        EXPECT_EQ(*val, delta.at(p, q));
      } else {
        EXPECT_FALSE(val.has_value());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRegimes, OracleSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 8),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Oracle, StreamedEdgesAllCarryGroundTruth) {
  // The generation contract: every streamed edge can be annotated with its
  // exact triangle count at emission time.
  const Graph a = gen::hub_cycle();
  const Graph b = gen::clique(3);
  const kron::TriangleOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);
  const auto delta = triangle::edge_support_masked(c);

  kron::EdgeStream stream(a, b);
  count_t edges = 0;
  while (auto e = stream.next()) {
    const auto val = oracle.edge_triangles(e->u, e->v);
    ASSERT_TRUE(val.has_value());
    EXPECT_EQ(*val, delta.at(e->u, e->v));
    ++edges;
  }
  EXPECT_EQ(edges, c.nnz());
}

TEST(Oracle, RejectsDirectedFactors) {
  const Graph a = kt_test::random_directed(4, 0.4, 1);
  const Graph b = kt_test::random_undirected(4, 0.4, 2);
  EXPECT_THROW(kron::TriangleOracle(a, b), std::invalid_argument);
}

TEST(Oracle, SixTauIdentityOnPaperShape) {
  // §VI's headline: τ(A⊗B) computable from factor counts alone.
  const Graph a = kt_test::random_undirected(20, 0.2, 5);
  const Graph b = a.with_all_self_loops();
  const kron::TriangleOracle no_loops(a, a);
  EXPECT_EQ(no_loops.total_triangles(),
            6 * triangle::count_total(a) * triangle::count_total(a));
  const kron::TriangleOracle boosted(a, b);
  EXPECT_GE(boosted.total_triangles(), no_loops.total_triangles());
}

}  // namespace
