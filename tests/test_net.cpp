// src/net/ — multi-node RunPlan execution over the socket transport.
//
// The contract under test: a plan run over --agents loopback agents,
// with or without injected partitions (drop_conn), garbled result
// frames (garble_frame), silent agents (heartbeat timeout) and
// duplicate result delivery, merges to a report BIT-IDENTICAL under
// runner::comparable() to the in-process serial run — and the
// --journal/--resume cycle across an agent death re-executes only the
// damaged units.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "api/plan.hpp"
#include "net/agent.hpp"
#include "net/framing.hpp"
#include "net/remote.hpp"
#include "net/socket.hpp"
#include "runner/runner.hpp"
#include "util/backoff.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"

namespace {

using namespace kronotri;
using util::json::Value;

// Same small product as test_runner.cpp: a base unit (census + degree)
// plus several validate shard-subset units.
constexpr const char* kPlanText =
    "kron:(hk:n=40,m=2,p=0.5,seed=7)x(hk:n=40,m=2,p=0.5,seed=7,loops=1) "
    "census:edges=1 degree:histogram=0 validate:mem_budget=8K";

api::RunPlan test_plan(unsigned threads = 2) {
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = threads;
  return plan;
}

std::string comparable_dump(const api::RunReport& report) {
  return runner::comparable(report.to_json()).dump_string(2);
}

int count_outcomes(const api::RunReport& report, const std::string& outcome) {
  int n = 0;
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.outcome == outcome) ++n;
  }
  return n;
}

std::set<unsigned> units_with(const api::RunReport& report,
                              const std::string& outcome) {
  std::set<unsigned> out;
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.outcome == outcome) out.insert(e.unit);
  }
  return out;
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag)
      : path("/tmp/kronotri_net" + std::to_string(::getpid()) + "_" + tag) {
    nuke();
    ::mkdir(path.c_str(), 0755);
  }
  ~TempDir() {
    nuke();
    ::rmdir(path.c_str());
  }
  void nuke() const {
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) return;
    while (dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n != "." && n != "..") ::unlink((path + "/" + n).c_str());
    }
    ::closedir(d);
  }
};

/// Remote-only runner options: no local slots, fast polling, agents only.
runner::Options remote_opts(const std::vector<std::string>& agents) {
  runner::Options opt;
  opt.workers = 0;
  opt.agents = agents;
  opt.straggler_min_s = 60;  // no accidental speculation on a loaded box
  opt.agent_connect_timeout_s = 2.0;
  return opt;
}

// ---------------------------------------------------------------------------
// Endpoint / framing / slots unit tests.

TEST(Net, ParseEndpointForms) {
  const net::Endpoint tcp = net::parse_endpoint("example.org:9471");
  EXPECT_EQ(tcp.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "example.org");
  EXPECT_EQ(tcp.port, 9471);

  const net::Endpoint v4 = net::parse_endpoint("127.0.0.1:80");
  EXPECT_EQ(v4.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(v4.host, "127.0.0.1");
  EXPECT_EQ(v4.port, 80);

  const net::Endpoint ux = net::parse_endpoint("unix:/run/kt.sock");
  EXPECT_EQ(ux.kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(ux.path, "/run/kt.sock");

  const net::Endpoint bare = net::parse_endpoint("./kt.sock");
  EXPECT_EQ(bare.kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(bare.path, "./kt.sock");

  EXPECT_THROW((void)net::parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW((void)net::parse_endpoint("nohost"), std::invalid_argument);
  EXPECT_THROW((void)net::parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW((void)net::parse_endpoint(":80"), std::invalid_argument);
  EXPECT_THROW((void)net::parse_endpoint("host:notaport"),
               std::invalid_argument);
}

TEST(Net, FrameReaderRoundTripAndSplitFeed) {
  Value msg = Value::object();
  msg.set("type", "hello");
  msg.set("proto", net::kProtoVersion);
  const std::string bytes = net::encode_message(msg);

  // Whole-frame feed.
  net::FrameReader r;
  r.feed(bytes);
  std::string payload;
  ASSERT_EQ(r.next(payload), net::FrameReader::Status::kFrame);
  EXPECT_EQ(Value::parse(payload).get_string("type", ""), "hello");
  EXPECT_EQ(r.next(payload), net::FrameReader::Status::kNeedMore);

  // Byte-at-a-time feed: a frame split across arbitrary reads must
  // assemble identically.
  net::FrameReader slow;
  int frames = 0;
  for (char c : bytes) {
    slow.feed(std::string_view(&c, 1));
    while (slow.next(payload) == net::FrameReader::Status::kFrame) ++frames;
  }
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(Value::parse(payload).get_string("type", ""), "hello");
}

TEST(Net, FrameReaderRejectsGarbledFrame) {
  Value msg = Value::object();
  msg.set("type", "result");
  msg.set("unit", 3);
  std::string bytes = net::encode_message(msg);
  // Flip one payload byte: length still parses, CRC must catch it.
  bytes[util::journal::kFrameOverhead / 2 + bytes.size() / 2] ^= 0x20;
  net::FrameReader r;
  r.feed(bytes);
  std::string payload;
  EXPECT_EQ(r.next(payload), net::FrameReader::Status::kCorrupt);
}

TEST(Net, FrameReaderRejectsBadMagic) {
  net::FrameReader r;
  r.feed("XXXX garbage that is not a journal frame");
  std::string payload;
  EXPECT_EQ(r.next(payload), net::FrameReader::Status::kCorrupt);
}

TEST(Net, ParseSlots) {
  EXPECT_EQ(net::parse_slots("3"), 3u);
  EXPECT_GE(net::parse_slots("auto"), 1u);  // hardware_concurrency, >= 1
  EXPECT_THROW((void)net::parse_slots("0"), std::invalid_argument);
  EXPECT_THROW((void)net::parse_slots("-2"), std::invalid_argument);
  EXPECT_THROW((void)net::parse_slots("lots"), std::invalid_argument);
  EXPECT_THROW((void)net::parse_slots(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Agent handshake.

TEST(Net, AgentHandshakeAdvertisesSlots) {
  net::AgentOptions aopt;
  aopt.slots = 3;
  net::Agent agent(aopt);
  std::string err;
  ASSERT_TRUE(agent.start(&err)) << err;
  ASSERT_GT(agent.port(), 0);

  net::AgentClient client;
  ASSERT_TRUE(client.connect(agent.endpoint(), &err)) << err;
  // The welcome arrives asynchronously through pump().
  Value welcome;
  bool got = false;
  for (int spin = 0; spin < 500 && !got; ++spin) {
    std::vector<Value> msgs;
    const net::AgentClient::Pump ps = client.pump(msgs);
    ASSERT_NE(ps, net::AgentClient::Pump::kCorrupt);
    for (Value& m : msgs) {
      if (m.get_string("type", "") == "welcome") {
        welcome = std::move(m);
        got = true;
      }
    }
    if (!got) util::Backoff::sleep_s(0.01);
  }
  ASSERT_TRUE(got) << "no welcome within 5s";
  EXPECT_EQ(welcome.get_uint("slots", 0), 3u);
  EXPECT_EQ(welcome.get_uint("proto", 0),
            static_cast<std::uint64_t>(net::kProtoVersion));
  client.close();
  agent.stop();
}

// ---------------------------------------------------------------------------
// End-to-end: pure-remote runs over loopback agents.

TEST(Net, RemoteMatchesSerialAcrossThreadCounts) {
  // OMP width must not leak into the merged report: the remote merge is
  // bit-identical to the serial run at 1, 2 and 8 threads alike.
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const api::RunPlan plan = test_plan(threads);
    const api::RunReport serial = api::run(plan);

    net::Agent a1{net::AgentOptions{}};
    net::Agent a2{net::AgentOptions{}};
    std::string err;
    ASSERT_TRUE(a1.start(&err)) << err;
    ASSERT_TRUE(a2.start(&err)) << err;
    const api::RunReport remote = runner::execute(
        plan, remote_opts({a1.endpoint(), a2.endpoint()}));
    a1.stop();
    a2.stop();

    EXPECT_TRUE(remote.pass);
    EXPECT_TRUE(remote.error.empty()) << remote.error;
    EXPECT_EQ(comparable_dump(serial), comparable_dump(remote));
    // Every attempt ran remotely, and carries its agent endpoint.
    EXPECT_GT(remote.worker_events.size(), 0u);
    for (const api::WorkerEvent& e : remote.worker_events) {
      EXPECT_EQ(e.outcome, "ok") << "unit " << e.unit;
      EXPECT_FALSE(e.host.empty()) << "unit " << e.unit;
    }
  }
}

TEST(Net, MixedLocalAndRemoteMatchesSerial) {
  const api::RunPlan plan = test_plan();
  const api::RunReport serial = api::run(plan);

  net::Agent agent{net::AgentOptions{}};
  std::string err;
  ASSERT_TRUE(agent.start(&err)) << err;
  runner::Options opt = remote_opts({agent.endpoint()});
  opt.workers = 2;  // local fork/exec slots next to the agent's
  const api::RunReport mixed = runner::execute(plan, opt);
  agent.stop();

  EXPECT_TRUE(mixed.pass);
  EXPECT_EQ(comparable_dump(serial), comparable_dump(mixed));
}

TEST(Net, AgentDiesMidUnitRedispatches) {
  // drop_conn fires inside the agent when the dispatch for (unit 2,
  // attempt 0) arrives: children are SIGKILLed and the socket slams
  // shut. The coordinator classifies whatever was in flight as
  // "disconnect", re-dials, and the retry completes the run.
  const api::RunPlan plan = test_plan();
  const api::RunReport serial = api::run(plan);

  net::Agent agent{net::AgentOptions{}};
  std::string err;
  ASSERT_TRUE(agent.start(&err)) << err;
  runner::Options opt = remote_opts({agent.endpoint()});
  opt.fault_spec = "drop_conn:shard=2:attempt=0";
  const api::RunReport report = runner::execute(plan, opt);
  agent.stop();

  EXPECT_TRUE(report.pass) << report.error;
  EXPECT_GE(count_outcomes(report, "disconnect"), 1);
  EXPECT_EQ(comparable_dump(serial), comparable_dump(report));
}

TEST(Net, GarbledFrameIsRejectedAndRedispatched) {
  // garble_frame flips a byte inside the framed result for (unit 1,
  // attempt 0). The coordinator's CRC check — not luck — must catch it:
  // the attempt classifies "garbled" and the re-dispatch completes.
  const api::RunPlan plan = test_plan();
  const api::RunReport serial = api::run(plan);

  net::Agent agent{net::AgentOptions{}};
  std::string err;
  ASSERT_TRUE(agent.start(&err)) << err;
  runner::Options opt = remote_opts({agent.endpoint()});
  opt.fault_spec = "garble_frame:shard=1:attempt=0";
  const api::RunReport report = runner::execute(plan, opt);
  agent.stop();

  EXPECT_TRUE(report.pass) << report.error;
  EXPECT_GE(count_outcomes(report, "garbled"), 1);
  EXPECT_EQ(comparable_dump(serial), comparable_dump(report));
}

TEST(Net, UnreachableAgentsFailStructurally) {
  api::RunPlan plan = test_plan();
  runner::Options opt = remote_opts({"127.0.0.1:1"});  // nothing listens
  opt.agent_connect_timeout_s = 0.2;
  opt.max_retries = 0;
  opt.backoff = util::Backoff{0.01, 2.0, 0.05};
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_FALSE(report.pass);
  EXPECT_NE(report.error.find("no reachable agents"), std::string::npos)
      << report.error;
}

// ---------------------------------------------------------------------------
// Scripted fake agent: heartbeat-timeout and duplicate-result paths that
// a well-behaved net::Agent never exercises.

/// Minimal scripted agent: accepts connections in a loop; the first
/// connection goes SILENT after its welcome (no heartbeats, no results —
/// the coordinator's heartbeat timeout has to declare it dead), every
/// later connection executes dispatched units in-process and sends each
/// result `result_copies` times (redelivery after a reconnect must be
/// idempotent).
class FakeAgent {
 public:
  explicit FakeAgent(int silent_connections, int result_copies = 1)
      : silent_left_(silent_connections), result_copies_(result_copies) {}

  ~FakeAgent() { stop(); }

  bool start(std::string* error) {
    net::ListenResult lr = net::listen_tcp("127.0.0.1", 0);
    if (!lr.ok()) {
      *error = lr.error;
      return false;
    }
    fd_ = lr.fd;
    port_ = lr.port;
    running_.store(true);
    thread_ = std::thread([this] { accept_loop(); });
    return true;
  }

  void stop() {
    if (!running_.exchange(false)) return;
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  void accept_loop() {
    while (running_.load()) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 100) <= 0) continue;
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) continue;
      serve(conn);
      ::close(conn);
    }
  }

  void serve(int conn) {
    const bool silent = silent_left_ > 0;
    if (silent) --silent_left_;
    net::FrameReader reader;
    const auto send = [&](const Value& m) {
      (void)net::write_all(conn, net::encode_message(m));
    };
    while (running_.load()) {
      pollfd pfd{conn, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 50);
      if (ready > 0) {
        std::string chunk;
        const net::IoStatus st = net::read_some(conn, chunk);
        if (st == net::IoStatus::kEof || st == net::IoStatus::kError) return;
        reader.feed(chunk);
      }
      std::string payload;
      net::FrameReader::Status fs;
      while ((fs = reader.next(payload)) == net::FrameReader::Status::kFrame) {
        const Value msg = Value::parse(payload);
        const std::string type = msg.get_string("type", "");
        if (type == "hello") {
          Value w = Value::object();
          w.set("type", "welcome");
          w.set("proto", net::kProtoVersion);
          w.set("slots", 2);
          send(w);
        } else if (type == "dispatch") {
          if (silent) continue;  // swallow the unit, say nothing, ever
          // Execute the child plan in-process — the fake agent IS the
          // test binary, api::run is right here.
          const api::RunPlan plan =
              api::RunPlan::parse(msg.get_string("plan", ""));
          const api::RunReport report = api::run(plan);
          Value r = Value::object();
          r.set("type", "result");
          r.set("unit", msg.get_uint("unit", 0));
          r.set("attempt", msg.get_uint("attempt", 0));
          r.set("pid", static_cast<std::int64_t>(::getpid()));
          r.set("wall_s", 0.0);
          r.set("outcome", "ok");
          r.set("fragment", report.to_json().dump_string(0));
          for (int i = 0; i < result_copies_; ++i) send(r);
        }
        // cancel: nothing in flight long enough to matter here.
      }
      if (fs == net::FrameReader::Status::kCorrupt) return;
      if (silent) {
        // Keep the connection open but never write: EOF must not be what
        // kills it — the heartbeat deadline must.
        continue;
      }
      Value hb = Value::object();
      hb.set("type", "heartbeat");
      send(hb);
    }
  }

  std::atomic<bool> running_{false};
  std::atomic<int> silent_left_;
  int result_copies_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST(Net, SilentAgentHitsHeartbeatTimeout) {
  api::RunPlan plan = test_plan(1);
  const api::RunReport serial = api::run(plan);

  FakeAgent agent(/*silent_connections=*/1);
  std::string err;
  ASSERT_TRUE(agent.start(&err)) << err;
  runner::Options opt = remote_opts({agent.endpoint()});
  opt.heartbeat_timeout_s = 0.4;  // agents heartbeat at 4 Hz; 0 Hz is dead
  const api::RunReport report = runner::execute(plan, opt);
  agent.stop();

  EXPECT_TRUE(report.pass) << report.error;
  EXPECT_GE(count_outcomes(report, "disconnect"), 1);
  EXPECT_EQ(comparable_dump(serial), comparable_dump(report));
}

TEST(Net, DuplicateResultAfterReconnectIsIdempotent) {
  api::RunPlan plan = test_plan(1);
  const api::RunReport serial = api::run(plan);

  FakeAgent agent(/*silent_connections=*/0, /*result_copies=*/2);
  std::string err;
  ASSERT_TRUE(agent.start(&err)) << err;
  const api::RunReport report =
      runner::execute(plan, remote_opts({agent.endpoint()}));
  agent.stop();

  EXPECT_TRUE(report.pass) << report.error;
  EXPECT_EQ(comparable_dump(serial), comparable_dump(report));
  // Exactly one "ok" per unit despite every result arriving twice; the
  // duplicates are counted, not replayed.
  std::set<unsigned> seen;
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.outcome != "ok") continue;
    EXPECT_TRUE(seen.insert(e.unit).second)
        << "unit " << e.unit << " completed twice";
  }
  const Value* dup = report.counters.find("runner.duplicate_results");
  ASSERT_NE(dup, nullptr);
  EXPECT_GE(dup->as_uint(), 1u);
}

// ---------------------------------------------------------------------------
// Durability across agent death.

TEST(Net, JournalResumeAcrossAgentDeath) {
  const TempDir dir("agent_death");
  api::RunPlan plan = test_plan();
  const api::RunReport serial = api::run(plan);

  // First run: one single-slot agent, and the connection is dropped when
  // unit 1's dispatch arrives. max_retries=0 turns that disconnect into
  // a structural failure — with unit 0 already journaled.
  net::Agent agent{net::AgentOptions{}};
  std::string err;
  ASSERT_TRUE(agent.start(&err)) << err;
  runner::Options opt = remote_opts({agent.endpoint()});
  opt.journal_dir = dir.path;
  opt.max_retries = 0;
  opt.fault_spec = "drop_conn:shard=1";
  const api::RunReport first = runner::execute(plan, opt);
  EXPECT_FALSE(first.pass);
  EXPECT_FALSE(first.error.empty());
  const std::set<unsigned> done_first = units_with(first, "ok");
  EXPECT_TRUE(done_first.count(0)) << "unit 0 should have completed";

  // Resume with the fault cleared: journaled units reload as "resumed",
  // only the damaged/never-run ones execute.
  opt.fault_spec = "";
  opt.resume = true;
  opt.max_retries = 2;
  const api::RunReport second = runner::execute(plan, opt);
  agent.stop();

  EXPECT_TRUE(second.pass) << second.error;
  EXPECT_EQ(units_with(second, "resumed"), done_first);
  for (const unsigned u : units_with(second, "ok")) {
    EXPECT_FALSE(done_first.count(u))
        << "unit " << u << " re-executed despite a verified fragment";
  }
  EXPECT_EQ(comparable_dump(serial), comparable_dump(second));
}

}  // namespace
