// Degree-distribution tests (§III.A, §IV.B): formulas, the max-ratio
// squaring law, and the factor-side histogram convolution.
#include <gtest/gtest.h>

#include "analysis/degree.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/formulas.hpp"
#include "kron/product.hpp"

namespace {

using namespace kronotri;

TEST(DegreeSummary, BasicStats) {
  const auto s = analysis::summarize_degrees({1, 2, 2, 5});
  EXPECT_EQ(s.max_degree, 5u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 2.5);
  EXPECT_DOUBLE_EQ(s.max_ratio, 5.0 / 4.0);
  EXPECT_EQ(s.histogram.at(2), 2u);
}

TEST(DegreeSummary, EmptyVector) {
  const auto s = analysis::summarize_degrees(std::vector<count_t>{});
  EXPECT_EQ(s.max_degree, 0u);
}

class DegreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DegreeSweep, InDegreesMatchMaterializedDirected) {
  const Graph a = kt_test::random_directed(6, 0.35, GetParam());
  const Graph b = kt_test::random_directed(5, 0.4, GetParam() + 1);
  const Graph c = kron::kron_graph(a, b);
  const auto din = kron::in_degrees(a, b).expand();
  const auto dout = kron::degrees(a, b).expand();
  const Graph ct = c.transpose();
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(dout[p], c.nonloop_degree(p));
    EXPECT_EQ(din[p], ct.nonloop_degree(p));
  }
}

TEST_P(DegreeSweep, KronSummaryMatchesMaterialized) {
  const Graph a = kt_test::random_undirected(8, 0.4, GetParam() + 10, 0.3);
  const Graph b = kt_test::random_undirected(7, 0.4, GetParam() + 11, 0.3);
  const Graph c = kron::kron_graph(a, b);
  const auto from_factors = analysis::summarize_kron_degrees(a, b);
  const auto direct = analysis::summarize_degrees(c);
  EXPECT_EQ(from_factors.max_degree, direct.max_degree);
  EXPECT_EQ(from_factors.histogram, direct.histogram);
  EXPECT_NEAR(from_factors.mean_degree, direct.mean_degree, 1e-9);
}

TEST_P(DegreeSweep, ConvolutionPathMatchesMaterializedWithoutLoops) {
  const Graph a = kt_test::random_undirected(9, 0.35, GetParam() + 20);
  const Graph b = kt_test::random_undirected(8, 0.35, GetParam() + 21, 0.5);
  const Graph c = kron::kron_graph(a, b);
  const auto from_factors = analysis::summarize_kron_degrees(a, b);
  const auto direct = analysis::summarize_degrees(c);
  EXPECT_EQ(from_factors.histogram, direct.histogram);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Degree, MaxRatioSquaresUnderProduct) {
  // §III.A: ‖d_C‖∞/n_C = (‖d_A‖∞/n_A)·(‖d_B‖∞/n_B) for loop-free factors.
  const Graph a = gen::barabasi_albert(200, 3, 5);
  const Graph b = gen::barabasi_albert(150, 2, 6);
  const auto sa = analysis::summarize_degrees(a);
  const auto sb = analysis::summarize_degrees(b);
  const auto sc = analysis::summarize_kron_degrees(a, b);
  EXPECT_NEAR(sc.max_ratio, sa.max_ratio * sb.max_ratio, 1e-12);
}

TEST(Degree, SelfLoopDegreeFormulas) {
  // §III.A: with loops in B only, d_C(p) = d_A(i)·(d_B(k)+1) at looped k.
  const Graph a = gen::clique(4);
  const Graph b = gen::clique(3).with_all_self_loops();
  const auto d = kron::degrees(a, b).expand();
  const kron::KronIndex idx(3);
  for (vid p = 0; p < 12; ++p) {
    const vid i = idx.a_of(p);
    EXPECT_EQ(d[p], a.nonloop_degree(i) * 3);  // (d_B + 1) = 3 everywhere
  }
  // Both factors looped: d_C(p) = (d_A+1)(d_B+1) − 1 (the loop of C).
  const Graph al = gen::clique(4).with_all_self_loops();
  const auto d2 = kron::degrees(al, b).expand();
  for (vid p = 0; p < 12; ++p) {
    EXPECT_EQ(d2[p], 4u * 3u - 1u);
  }
}

TEST(Degree, HeavyTailSurvivesProduct) {
  const Graph a = gen::barabasi_albert(300, 3, 8);
  const auto sc = analysis::summarize_kron_degrees(a, a);
  EXPECT_LT(sc.loglog_slope, -0.8);
  EXPECT_GT(static_cast<double>(sc.max_degree),
            20.0 * sc.mean_degree);
}

}  // namespace
