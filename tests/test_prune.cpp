// Tests for §III.D strategy (a): pruning a graph to Δ ≤ 1 while keeping a
// spanning tree (connectivity) intact.
#include <gtest/gtest.h>

#include "analysis/components.hpp"
#include "gen/classic.hpp"
#include "gen/prune.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/product.hpp"
#include "truss/decompose.hpp"
#include "truss/kron_truss.hpp"

namespace {

using namespace kronotri;

TEST(Prune, AlreadyCompliantGraphsUnchanged) {
  for (const Graph& g : {gen::cycle(7), gen::path(5), gen::clique(3),
                         gen::star(6)}) {
    const Graph pruned = gen::prune_to_one_triangle(g);
    EXPECT_TRUE(pruned == g);
  }
}

TEST(Prune, CliqueBecomesCompliant) {
  const Graph pruned = gen::prune_to_one_triangle(gen::clique(8));
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(pruned));
  EXPECT_TRUE(analysis::is_connected(pruned));
  EXPECT_EQ(pruned.num_vertices(), 8u);
}

TEST(Prune, HubCycle) {
  const Graph pruned = gen::prune_to_one_triangle(gen::hub_cycle());
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(pruned));
  EXPECT_TRUE(analysis::is_connected(pruned));
}

TEST(Prune, DirectedInputThrows) {
  const Graph d = Graph::from_edges(3, {{{0, 1}, {1, 2}}}, false);
  EXPECT_THROW(gen::prune_to_one_triangle(d), std::invalid_argument);
}

TEST(Prune, SelfLoopsDropped) {
  const Graph g = gen::clique(4).with_all_self_loops();
  const Graph pruned = gen::prune_to_one_triangle(g);
  EXPECT_FALSE(pruned.has_self_loops());
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(pruned));
}

class PruneSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PruneSweep, InvariantsOnRandomGraphs) {
  const Graph g = kt_test::random_undirected(40, 0.2, GetParam());
  const Graph pruned = gen::prune_to_one_triangle(g, GetParam());

  // Δ ≤ 1 achieved.
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(pruned));
  // Subgraph of the input.
  for (vid u = 0; u < pruned.num_vertices(); ++u) {
    for (const vid v : pruned.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
  // Component structure preserved (spanning forest protected).
  EXPECT_EQ(analysis::connected_components(pruned).count,
            analysis::connected_components(g).count);
}

TEST_P(PruneSweep, ScaleFreeInputStaysHeavyTailedEnoughForThm3) {
  // The paper's workflow: take a "real-world" graph, prune, use as B.
  const Graph real = gen::holme_kim(300, 3, 0.7, GetParam() + 10);
  const Graph b = gen::prune_to_one_triangle(real, GetParam());
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(b));
  EXPECT_TRUE(analysis::is_connected(b));
  // And it actually works as a Thm 3 right factor.
  const Graph a = kt_test::random_undirected(6, 0.5, GetParam() + 20);
  const truss::KronTrussOracle oracle(a, b);
  EXPECT_GE(oracle.max_truss(), 2u);
}

TEST_P(PruneSweep, DeterministicInSeed) {
  const Graph g = kt_test::random_undirected(30, 0.25, GetParam() + 30);
  EXPECT_TRUE(gen::prune_to_one_triangle(g, 5) ==
              gen::prune_to_one_triangle(g, 5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Prune, Thm3EndToEndWithPrunedB) {
  const Graph a = kt_test::random_undirected(5, 0.6, 3);
  const Graph b = gen::prune_to_one_triangle(gen::holme_kim(12, 2, 0.8, 4), 5);
  const truss::KronTrussOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);
  const auto direct = truss::decompose(c);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    for (const vid q : c.neighbors(p)) {
      EXPECT_EQ(oracle.truss_number(p, q), direct.truss_number.at(p, q));
    }
  }
}

}  // namespace
