// Tests for the Kronecker index maps, explicit products, implicit view and
// edge stream — §II of the paper plus the compressed representation claims.
#include <gtest/gtest.h>

#include <set>

#include "core/ops.hpp"
#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/index.hpp"
#include "kron/product.hpp"
#include "kron/stream.hpp"
#include "kron/view.hpp"

namespace {

using namespace kronotri;
using kron::KronIndex;

TEST(KronIndex, RoundTrip) {
  const KronIndex idx(7);
  for (vid i = 0; i < 5; ++i) {
    for (vid k = 0; k < 7; ++k) {
      const vid p = idx.compose(i, k);
      EXPECT_EQ(idx.a_of(p), i);
      EXPECT_EQ(idx.b_of(p), k);
    }
  }
}

TEST(KronIndex, CoversRangeExactlyOnce) {
  const KronIndex idx(4);
  std::set<vid> seen;
  for (vid i = 0; i < 6; ++i) {
    for (vid k = 0; k < 4; ++k) seen.insert(idx.compose(i, k));
  }
  EXPECT_EQ(seen.size(), 24u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 23u);
}

TEST(KronProduct, MatchesDefinitionEntrywise) {
  // (A⊗B)[γ(i,k), γ(j,l)] = A[i,j]·B[k,l] (Def. 1).
  const Graph a = kt_test::random_undirected(5, 0.5, 1, 0.3);
  const Graph b = kt_test::random_directed(4, 0.4, 2);
  const auto c = kron::kron_matrix<count_t>(a.matrix(), b.matrix());
  const KronIndex idx(4);
  for (vid i = 0; i < 5; ++i) {
    for (vid j = 0; j < 5; ++j) {
      for (vid k = 0; k < 4; ++k) {
        for (vid l = 0; l < 4; ++l) {
          const count_t expected =
              static_cast<count_t>(a.matrix().at(i, j)) *
              static_cast<count_t>(b.matrix().at(k, l));
          ASSERT_EQ(c.at(idx.compose(i, k), idx.compose(j, l)), expected);
        }
      }
    }
  }
}

TEST(KronProduct, VectorProduct) {
  const std::vector<count_t> a = {1, 2, 3};
  const std::vector<count_t> b = {4, 5};
  const auto c = kron::kron_vector(a, b);
  const std::vector<count_t> expected = {4, 5, 8, 10, 12, 15};
  EXPECT_EQ(c, expected);
}

TEST(KronProduct, MixedProductProperty) {
  // Prop. 1(d): (A1⊗A2)(A3⊗A4) = (A1·A3)⊗(A2·A4).
  const Graph a1 = kt_test::random_directed(4, 0.5, 10);
  const Graph a2 = kt_test::random_directed(3, 0.5, 11);
  const Graph a3 = kt_test::random_directed(4, 0.5, 12);
  const Graph a4 = kt_test::random_directed(3, 0.5, 13);
  const auto lhs = ops::spgemm(kron::kron_matrix<count_t>(a1.matrix(), a2.matrix()),
                               kron::kron_matrix<count_t>(a3.matrix(), a4.matrix()));
  const auto rhs = kron::kron_matrix<count_t>(
      ops::spgemm(a1.matrix(), a3.matrix()),
      ops::spgemm(a2.matrix(), a4.matrix()));
  EXPECT_TRUE(lhs == rhs);
}

TEST(KronProduct, HadamardKroneckerDistributivity) {
  // Prop. 2(e): (A1⊗A2) ∘ (A3⊗A4) = (A1∘A3)⊗(A2∘A4).
  const Graph a1 = kt_test::random_directed(4, 0.6, 20);
  const Graph a2 = kt_test::random_directed(3, 0.6, 21);
  const Graph a3 = kt_test::random_directed(4, 0.6, 22);
  const Graph a4 = kt_test::random_directed(3, 0.6, 23);
  const auto lhs =
      ops::hadamard(kron::kron_matrix<count_t>(a1.matrix(), a2.matrix()),
                    kron::kron_matrix<count_t>(a3.matrix(), a4.matrix()));
  const auto rhs = kron::kron_matrix<count_t>(
      ops::hadamard(a1.matrix(), a3.matrix()),
      ops::hadamard(a2.matrix(), a4.matrix()));
  EXPECT_TRUE(lhs == rhs);
}

TEST(KronProduct, DiagKroneckerDistributivity) {
  // Prop. 2(f): diag(A1⊗A2) = diag(A1)⊗diag(A2).
  const Graph a1 = kt_test::random_undirected(5, 0.5, 30, 0.5);
  const Graph a2 = kt_test::random_undirected(4, 0.5, 31, 0.5);
  const auto lhs = ops::diag_vec(kron::kron_matrix<count_t>(a1.matrix(), a2.matrix()));
  std::vector<count_t> d1(5), d2(4);
  for (vid i = 0; i < 5; ++i) d1[i] = a1.matrix().at(i, i);
  for (vid k = 0; k < 4; ++k) d2[k] = a2.matrix().at(k, k);
  EXPECT_EQ(lhs, kron::kron_vector(d1, d2));
}

TEST(KronGraph, CliqueProductStats) {
  // Ex. 1(a): C = K4 ⊗ K5 — every vertex has degree (n_A·n_B+1−n_A−n_B).
  const Graph c = kron::kron_graph(gen::clique(4), gen::clique(5));
  EXPECT_EQ(c.num_vertices(), 20u);
  EXPECT_TRUE(c.is_undirected());
  EXPECT_FALSE(c.has_self_loops());
  for (vid p = 0; p < 20; ++p) {
    EXPECT_EQ(c.nonloop_degree(p), 20u + 1 - 4 - 5);
  }
}

class KronViewProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KronViewProperty, ViewAgreesWithMaterialized) {
  const Graph a = kt_test::random_undirected(6, 0.4, GetParam(), 0.3);
  const Graph b = kt_test::random_undirected(5, 0.5, GetParam() + 1, 0.3);
  const kron::KronGraphView view(a, b);
  const Graph c = view.materialize();

  EXPECT_EQ(view.num_vertices(), c.num_vertices());
  EXPECT_EQ(view.nnz(), c.nnz());
  EXPECT_EQ(view.num_self_loops(), c.num_self_loops());
  EXPECT_EQ(view.is_undirected(), c.is_undirected());
  EXPECT_EQ(view.num_undirected_edges(), c.num_undirected_edges());

  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(view.out_degree(p), c.out_degree(p));
    EXPECT_EQ(view.nonloop_degree(p), c.nonloop_degree(p));
    const auto nb = view.neighbors(p);
    const auto expect = c.neighbors(p);
    ASSERT_EQ(nb.size(), expect.size());
    EXPECT_TRUE(std::equal(nb.begin(), nb.end(), expect.begin()));
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  }
  for (vid p = 0; p < c.num_vertices(); ++p) {
    for (vid q = 0; q < c.num_vertices(); ++q) {
      ASSERT_EQ(view.has_edge(p, q), c.has_edge(p, q));
    }
  }
}

TEST_P(KronViewProperty, DirectedFactorsSupported) {
  const Graph a = kt_test::random_directed(5, 0.4, GetParam() + 500);
  const Graph b = kt_test::random_undirected(4, 0.5, GetParam() + 501);
  const kron::KronGraphView view(a, b);
  const Graph c = view.materialize();
  EXPECT_EQ(view.nnz(), c.nnz());
  EXPECT_FALSE(view.is_undirected() && !c.is_undirected());
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(view.out_degree(p), c.out_degree(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KronViewProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(KronStream, SinglePartitionEmitsAllEdges) {
  const Graph a = kt_test::random_undirected(5, 0.5, 3);
  const Graph b = kt_test::random_undirected(4, 0.5, 4);
  const Graph c = kron::kron_graph(a, b);
  kron::EdgeStream stream(a, b);
  EXPECT_EQ(stream.partition_size(), c.nnz());
  std::set<std::pair<vid, vid>> seen;
  while (auto e = stream.next()) {
    EXPECT_TRUE(c.has_edge(e->u, e->v));
    EXPECT_TRUE(seen.emplace(e->u, e->v).second) << "duplicate edge";
  }
  EXPECT_EQ(seen.size(), c.nnz());
  EXPECT_EQ(stream.emitted(), c.nnz());
}

TEST(KronStream, PartitionsAreDisjointAndComplete) {
  const Graph a = kt_test::random_undirected(6, 0.4, 5);
  const Graph b = kt_test::random_undirected(5, 0.4, 6);
  const Graph c = kron::kron_graph(a, b);
  std::set<std::pair<vid, vid>> seen;
  esz total = 0;
  const std::uint64_t nparts = 7;
  for (std::uint64_t part = 0; part < nparts; ++part) {
    kron::EdgeStream stream(a, b, part, nparts);
    total += stream.partition_size();
    while (auto e = stream.next()) {
      EXPECT_TRUE(seen.emplace(e->u, e->v).second)
          << "edge in two partitions";
    }
  }
  EXPECT_EQ(total, c.nnz());
  EXPECT_EQ(seen.size(), c.nnz());
}

TEST(KronStream, ResetRestarts) {
  const Graph a = gen::clique(3);
  const Graph b = gen::clique(3);
  kron::EdgeStream stream(a, b);
  const auto first = stream.next();
  ASSERT_TRUE(first.has_value());
  while (stream.next()) {
  }
  stream.reset();
  const auto again = stream.next();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->u, first->u);
  EXPECT_EQ(again->v, first->v);
}

TEST(KronStream, InvalidPartitionThrows) {
  const Graph a = gen::clique(3);
  EXPECT_THROW(kron::EdgeStream(a, a, 3, 3), std::invalid_argument);
  EXPECT_THROW(kron::EdgeStream(a, a, 0, 0), std::invalid_argument);
}

}  // namespace
