// Tests for src/validate/: the sharded streaming census must be
// bit-identical to the materialized triangle::CensusWorkspace result at
// every OMP thread count and shard count, respect its memory budget, and
// the report/sink layers must validate clean products against the closed
// forms.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <map>
#include <vector>

#include "api/pipeline.hpp"
#include "api/sink.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/multi.hpp"
#include "kron/oracle.hpp"
#include "kron/product.hpp"
#include "kron/view.hpp"
#include "triangle/census.hpp"
#include "validate/report.hpp"
#include "validate/streaming_census.hpp"

namespace {

using namespace kronotri;
using validate::StreamingCensus;
using validate::StreamingOptions;

/// Full census assembled from the streaming shards: per-vertex counts in
/// vertex order plus an (u,v) → Δ map over all undirected non-loop edges.
struct FullCensus {
  std::vector<count_t> vertex;
  std::map<std::pair<vid, vid>, count_t> edge;
  validate::StreamingStats stats;
};

FullCensus collect(const StreamingCensus& census) {
  FullCensus full;
  full.vertex.reserve(census.num_vertices());
  full.stats = census.run([&](const StreamingCensus::Shard& shard) {
    EXPECT_EQ(shard.lo(), full.vertex.size());
    const auto vc = shard.vertex_counts();
    full.vertex.insert(full.vertex.end(), vc.begin(), vc.end());
    shard.for_each_owned_edge([&](vid u, vid v, count_t d) {
      EXPECT_LT(u, v);
      EXPECT_TRUE(full.edge.emplace(std::make_pair(u, v), d).second)
          << "edge (" << u << "," << v << ") owned twice";
    });
  });
  EXPECT_EQ(full.vertex.size(), census.num_vertices());
  return full;
}

/// Reference census of the materialized product via the PR-2 engine.
FullCensus materialized_reference(const Graph& c) {
  const triangle::CensusWorkspace ws(c);
  FullCensus full;
  full.vertex.assign(c.num_vertices(), 0);
  std::vector<std::vector<count_t>> tls(triangle::census_workers());
  for (auto& t : tls) t.assign(c.num_vertices(), 0);
  ws.for_each_triangle_vertices(
      tls, [](std::vector<count_t>& t, vid u, vid v, vid w) {
        ++t[u];
        ++t[v];
        ++t[w];
      });
  for (const auto& t : tls) {
    for (vid p = 0; p < c.num_vertices(); ++p) full.vertex[p] += t[p];
  }
  const auto per_edge = ws.edge_census();
  for (esz e = 0; e < ws.num_edges(); ++e) {
    full.edge.emplace(ws.edge_ids().ends[e], per_edge[e]);
  }
  return full;
}

/// Runs fn at OMP 1/2/8 and returns the collected results.
template <typename Fn>
auto with_thread_counts(Fn&& fn) {
  std::vector<decltype(fn())> results;
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (const int t : {1, 2, 8}) {
    omp_set_num_threads(t);
    results.push_back(fn());
  }
  omp_set_num_threads(saved);
#else
  results.push_back(fn());
#endif
  return results;
}

class StreamingParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingParity, BitIdenticalToWorkspaceAcrossThreadsAndShards) {
  // Loop regimes: none, B only, both factors.
  const Graph a = kt_test::random_undirected(14, 0.3, GetParam(),
                                             GetParam() % 3 == 2 ? 0.3 : 0.0);
  const Graph b = kt_test::random_undirected(11, 0.35, GetParam() + 7,
                                             GetParam() % 3 != 0 ? 0.4 : 0.0);
  const Graph c = kron::kron_graph(a, b);
  const FullCensus ref = materialized_reference(c);
  for (const std::uint64_t shards : {1u, 4u, 16u}) {
    StreamingOptions opt;
    opt.force_shards = shards;
    const auto runs = with_thread_counts(
        [&] { return collect(StreamingCensus(a, b, opt)); });
    for (const auto& run : runs) {
      EXPECT_EQ(run.vertex, ref.vertex) << "shards=" << shards;
      EXPECT_EQ(run.edge, ref.edge) << "shards=" << shards;
      EXPECT_EQ(run.stats.total_triangles,
                runs.front().stats.total_triangles);
      EXPECT_EQ(run.stats.wedge_checks, runs.front().stats.wedge_checks);
    }
  }
}

TEST_P(StreamingParity, ThreeFactorChainMatchesWorkspaceAndClosedForm) {
  const Graph f1 = kt_test::random_undirected(5, 0.5, GetParam(), 0.3);
  const Graph f2 = kt_test::random_undirected(4, 0.5, GetParam() + 1);
  const Graph f3 = kt_test::random_undirected(3, 0.6, GetParam() + 2, 0.5);
  const kron::KronChain chain({f1, f2, f3});
  const Graph c = chain.materialize();
  const FullCensus ref = materialized_reference(c);
  StreamingOptions opt;
  opt.force_shards = 4;
  const FullCensus run = collect(StreamingCensus(chain, opt));
  EXPECT_EQ(run.vertex, ref.vertex);
  EXPECT_EQ(run.edge, ref.edge);
  // Oracle-vs-measured parity on the 3-factor composition (closed forms).
  EXPECT_EQ(run.stats.total_triangles, chain.total_triangles());
  for (vid p = 0; p < chain.num_vertices(); ++p) {
    EXPECT_EQ(run.vertex[p], chain.vertex_triangles(p)) << "vertex " << p;
  }
  for (const auto& [uv, d] : run.edge) {
    EXPECT_EQ(d, chain.edge_triangles(uv.first, uv.second))
        << "edge (" << uv.first << "," << uv.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingParity,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(StreamingCensus, BudgetDrivesShardCountAndBoundsAccumulators) {
  const Graph a = gen::holme_kim(60, 3, 0.6, 11);
  const Graph b = gen::clique(4);
  StreamingOptions tight;
  tight.mem_budget_bytes = 2048;
  const StreamingCensus census(a, b, tight);
  ASSERT_GT(census.shards().size(), 4u);
  // Shards tile [0, n) contiguously.
  vid expect_lo = 0;
  for (const auto& s : census.shards()) {
    EXPECT_EQ(s.lo, expect_lo);
    EXPECT_LT(s.lo, s.hi);
    expect_lo = s.hi;
  }
  EXPECT_EQ(expect_lo, census.num_vertices());
  const auto stats = census.run();
  // Every per-shard accumulator stayed within the budget (no product vertex
  // here needs more than the budget alone, so the bound is exact).
  EXPECT_LE(stats.peak_accumulator_bytes, tight.mem_budget_bytes);
  // Identical to the one-shard run.
  StreamingOptions one;
  one.force_shards = 1;
  const auto wide = StreamingCensus(a, b, one).run();
  EXPECT_EQ(stats.total_triangles, wide.total_triangles);
  EXPECT_EQ(stats.vertex_count_sum, wide.vertex_count_sum);
  EXPECT_EQ(stats.edge_count_sum, wide.edge_count_sum);
  EXPECT_EQ(stats.num_edges, wide.num_edges);
  EXPECT_GT(wide.peak_accumulator_bytes, stats.peak_accumulator_bytes);
}

TEST(StreamingCensus, UpperDegreeMatchesEnumeration) {
  const Graph a = kt_test::random_undirected(9, 0.4, 3, 0.5);
  const Graph b = kt_test::random_undirected(7, 0.4, 4, 0.5);
  const StreamingCensus census(a, b);
  const kron::KronGraphView view(a, b);
  for (vid p = 0; p < view.num_vertices(); ++p) {
    esz expected = 0;
    for (const vid q : view.neighbors(p)) expected += q > p ? 1 : 0;
    EXPECT_EQ(census.upper_degree(p), expected) << "vertex " << p;
  }
}

TEST(StreamingCensus, SumsAreConsistent) {
  const Graph a = gen::holme_kim(40, 2, 0.5, 19);
  const Graph b = gen::cycle(5);
  const auto stats = StreamingCensus(a, b).run();
  EXPECT_EQ(stats.vertex_count_sum, 3 * stats.total_triangles);
  EXPECT_EQ(stats.edge_count_sum, 3 * stats.total_triangles);
  EXPECT_EQ(stats.num_edges,
            kron::KronGraphView(a, b).num_undirected_edges());
}

TEST(StreamingCensus, RejectsDirectedFactors) {
  const Graph d = Graph::from_edges(3, {{{0, 1}, {1, 2}}}, false);
  const Graph u = gen::clique(3);
  EXPECT_THROW(StreamingCensus(d, u), std::invalid_argument);
  EXPECT_THROW(StreamingCensus(u, d), std::invalid_argument);
}

TEST(ValidationReport, PassesOnCleanProductsEveryLoopRegime) {
  const Graph a = gen::holme_kim(50, 3, 0.6, 23);
  for (const bool loops_a : {false, true}) {
    for (const bool loops_b : {false, true}) {
      const Graph fa = loops_a ? a.with_all_self_loops() : a;
      const Graph fb = loops_b ? gen::clique(3).with_all_self_loops()
                               : gen::clique(3);
      validate::StreamingOptions opt;
      opt.mem_budget_bytes = 8192;
      const auto report = validate::validate_product(fa, fb, opt);
      EXPECT_TRUE(report.pass()) << "loops_a=" << loops_a
                                 << " loops_b=" << loops_b;
      EXPECT_EQ(report.vertex_mismatches, 0u);
      EXPECT_EQ(report.edge_mismatches, 0u);
      EXPECT_EQ(report.measured_total, report.predicted_total);
      EXPECT_GT(report.stats.num_shards, 1u);
      // Histogram totals cover every vertex / edge exactly once.
      count_t vhist = 0, ehist = 0;
      for (const auto& [k, v] : report.vertex_histogram) vhist += v;
      for (const auto& [k, v] : report.edge_histogram) ehist += v;
      EXPECT_EQ(vhist, report.num_vertices);
      EXPECT_EQ(ehist, report.num_edges);
    }
  }
}

TEST(ValidationReport, ChainReportPassesAndCountsEdges) {
  const kron::KronChain chain(
      {gen::holme_kim(30, 2, 0.5, 31), gen::clique(3),
       gen::path(3).with_all_self_loops()});
  const auto report = validate::validate_chain(chain);
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.num_vertices, chain.num_vertices());
  EXPECT_EQ(report.num_edges,
            chain.num_undirected_edges() -
                static_cast<count_t>(chain.materialize().num_self_loops()));
}

TEST(ValidatingCensusSink, AllGeneratedEdgesMatchTheOracle) {
  const Graph a = gen::holme_kim(40, 3, 0.6, 37);
  const Graph b = gen::clique(3).with_all_self_loops();
  const kron::KronGraphView view(a, b);
  const kron::TriangleOracle oracle(a, b);
  // Parallel fan-out: each partition validates its own slice of C.
  auto sinks = api::stream_parallel(
      a, b, 4, [&](std::uint64_t, std::uint64_t) {
        return std::make_unique<api::ValidatingCensusSink>(view, oracle);
      });
  api::ValidatingCensusSink total(view, oracle);
  for (const auto& s : sinks) {
    total.merge(static_cast<const api::ValidatingCensusSink&>(*s));
  }
  EXPECT_EQ(total.edges_consumed(), view.nnz());
  EXPECT_EQ(total.mismatches(), 0u);
  EXPECT_EQ(total.max_abs_error(), 0u);
  EXPECT_TRUE(total.pass());
  // Every undirected non-loop edge checked exactly once across partitions.
  EXPECT_EQ(total.edges_checked(),
            view.num_undirected_edges() -
                static_cast<count_t>(view.num_self_loops()));
  // The histogram is the exact measured Δ distribution — its weighted sum
  // is 3τ.
  count_t weighted = 0;
  for (const auto& [delta, freq] : total.histogram()) {
    weighted += delta * freq;
  }
  EXPECT_EQ(weighted, 3 * oracle.total_triangles());
}

TEST(ValidatingCensusSink, RejectsDirectedView) {
  const Graph d = Graph::from_edges(3, {{{0, 1}, {1, 2}}}, false);
  const Graph u = gen::clique(3);
  const kron::KronGraphView view(d, u);
  const kron::TriangleOracle oracle(u, u);
  EXPECT_THROW(api::ValidatingCensusSink(view, oracle),
               std::invalid_argument);
}

}  // namespace
