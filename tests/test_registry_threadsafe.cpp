// Registry thread-safety regression: service workers look families up
// concurrently, and applications may register analyses while a server is
// executing plans. Before the shared_mutex guard, concurrent add()+build()
// raced on the factory map; these tests hammer exactly that interleaving.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/analysis.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"

namespace {

using namespace kronotri;

TEST(RegistryThreadSafe, ConcurrentGeneratorBuildsFromOmpRegion) {
  api::GeneratorRegistry& reg = api::GeneratorRegistry::builtin();
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> edges_total{0};
#ifdef _OPENMP
#pragma omp parallel for num_threads(8)
#endif
  for (int i = 0; i < 64; ++i) {
    try {
      const api::GraphSpec spec = api::GraphSpec::parse(
          "kron:(hk:n=40,seed=" + std::to_string(i % 4) +
          ")x(clique:n=3,loops=1)");
      const Graph g = reg.build(spec);
      if (g.num_vertices() == 0) failures.fetch_add(1);
      edges_total.fetch_add(g.nnz());
      if (!reg.contains("hk") || reg.families().empty()) {
        failures.fetch_add(1);
      }
    } catch (...) {
      failures.fetch_add(1);
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(edges_total.load(), 0u);
}

TEST(RegistryThreadSafe, AddsRacingBuildsOnBothRegistries) {
  api::GeneratorRegistry& gens = api::GeneratorRegistry::builtin();
  api::AnalysisRegistry& analyses = api::AnalysisRegistry::builtin();
  std::atomic<int> failures{0};

  // Half the threads register unique families/analyses, half build and
  // look up concurrently — the add()/lookup interleaving the service's
  // "register while serving" contract permits.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int i = 0; i < 32; ++i) {
          if (t % 2 == 0) {
            const std::string name =
                "ts-gen-" + std::to_string(t) + "-" + std::to_string(i);
            gens.add(name, "test-only", [](const api::GraphSpec&) {
              const std::vector<std::pair<vid, vid>> edges = {{0, 1}};
              return Graph::from_edges(2, edges, /*symmetrize=*/true);
            });
            const std::string aname =
                "ts-an-" + std::to_string(t) + "-" + std::to_string(i);
            analyses.add(aname, "test-only",
                         [](const api::Params&) -> std::unique_ptr<api::Analysis> {
                           return nullptr;
                         });
            if (!gens.contains(name) || !analyses.contains(aname)) {
              failures.fetch_add(1);
            }
          } else {
            const Graph g =
                gens.build(api::GraphSpec::parse("hk:n=30,seed=1"));
            if (g.num_vertices() != 30) failures.fetch_add(1);
            auto a = analyses.build("census", {});
            if (a == nullptr) failures.fetch_add(1);
            if (gens.families().empty() || analyses.families().empty()) {
              failures.fetch_add(1);
            }
          }
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The registrations landed: every unique name is present afterwards.
  for (int t = 0; t < 8; t += 2) {
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(gens.contains("ts-gen-" + std::to_string(t) + "-" +
                                std::to_string(i)));
    }
  }
}

}  // namespace
