// Flight-recorder suite: the trace export must be valid Chrome
// trace-event JSON (parses with util::json, spans well-nested per
// pid/tid track), worker traces must stitch in under their own pids,
// disabled mode must record nothing, and tracing must never perturb
// results — the OMP 1/2/8 determinism contract holds bit-identically
// with the recorder on.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/plan.hpp"
#include "obs/counters.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"
#include "runner/runner.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace {

using namespace kronotri;
using util::json::Value;

// Small plan exercising generate, stream, analyze and validate stages.
constexpr const char* kPlanText =
    "kron:(hk:n=40,m=2,p=0.5,seed=7)x(hk:n=40,m=2,p=0.5,seed=7,loops=1) "
    "census:edges=1 degree:histogram=0 validate:mem_budget=8K";

/// RAII: recorder on + clean registry, everything off/cleared on exit so
/// tests never leak trace state into each other.
struct TraceOn {
  TraceOn() {
    obs::TraceRecorder::instance().clear();
    obs::TraceRecorder::instance().set_enabled(true);
  }
  ~TraceOn() {
    obs::TraceRecorder::instance().set_enabled(false);
    obs::TraceRecorder::instance().clear();
  }
};

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& tag)
      : path("/tmp/kronotri_obs" + std::to_string(::getpid()) + "_" + tag) {}
  ~TempFile() { std::remove(path.c_str()); }
};

const std::vector<Value>& trace_events(const Value& doc) {
  const Value* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  return events->items();
}

/// Per-(pid,tid) well-nestedness of 'X' spans: sorted by start (longer
/// first on ties), every span must either nest fully inside the enclosing
/// open span or start after it ends. Overlap without containment fails.
void expect_well_nested(const Value& doc) {
  std::map<std::pair<std::int64_t, std::uint64_t>, std::vector<std::pair<double, double>>>
      tracks;
  for (const Value& ev : trace_events(doc)) {
    if (ev.get_string("ph", "") != "X") continue;
    const double ts = ev.find("ts")->as_double();
    const double dur = ev.find("dur")->as_double();
    tracks[{ev.find("pid")->as_int(), ev.get_uint("tid", 0)}].emplace_back(
        ts, ts + dur);
  }
  for (auto& [track, spans] : tracks) {
    std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;  // longer (enclosing) span first
    });
    std::vector<std::pair<double, double>> stack;
    for (const auto& [start, end] : spans) {
      while (!stack.empty() && start >= stack.back().second) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(end, stack.back().second)
            << "span [" << start << "," << end << ") overlaps enclosing ["
            << stack.back().first << "," << stack.back().second
            << ") on pid=" << track.first << " tid=" << track.second;
      }
      stack.emplace_back(start, end);
    }
  }
}

bool has_span(const Value& doc, const std::string& name) {
  for (const Value& ev : trace_events(doc)) {
    if (ev.get_string("ph", "") == "X" && ev.get_string("name", "") == name) {
      return true;
    }
  }
  return false;
}

TEST(Stopwatch, WallAdvancesAndCpuNonNegative) {
  obs::Stopwatch sw;
  const double t0 = obs::now_us();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  EXPECT_GT(obs::now_us(), t0);
  EXPECT_GE(sw.wall_s(), 0.0);
  EXPECT_GE(sw.cpu_s(), 0.0);
  EXPECT_NEAR(sw.wall_ms(), sw.wall_s() * 1000.0, 1.0);
  sw.reset();
  EXPECT_LT(sw.wall_s(), 1.0);
}

TEST(Counters, RegistrySnapshotAndDelta) {
  obs::CounterRegistry& reg = obs::CounterRegistry::instance();
  reg.reset();
  const Value empty = reg.snapshot();
  EXPECT_TRUE(!empty.is_object() || empty.members().empty());

  const Value start = reg.snapshot();
  obs::counter("test.alpha").add(3);
  obs::counter("test.alpha").add(2);
  obs::gauge("test.peak").max_of(7.5);
  obs::gauge("test.peak").max_of(2.0);  // lower: must not win
  const Value end = reg.snapshot();
  EXPECT_EQ(end.get_uint("test.alpha", 0), 5u);
  EXPECT_DOUBLE_EQ(end.find("test.peak")->as_double(), 7.5);

  // Delta vs the pre-increment snapshot reports exactly this run's bumps.
  const Value d = obs::CounterRegistry::delta(start, end);
  EXPECT_EQ(d.get_uint("test.alpha", 0), 5u);
  // Delta vs the post-increment snapshot reports no counter movement.
  const Value d2 = obs::CounterRegistry::delta(end, end);
  EXPECT_EQ(d2.find("test.alpha"), nullptr);
  reg.reset();
}

TEST(Log, LevelParsingAndLineFormat) {
  using util::log::Level;
  EXPECT_EQ(util::log::level_from("debug"), Level::kDebug);
  EXPECT_EQ(util::log::level_from("INFO"), Level::kInfo);
  EXPECT_EQ(util::log::level_from("off"), Level::kOff);
  EXPECT_EQ(util::log::level_from("bogus"), Level::kWarn);

  const std::string line = util::log::format_line(
      Level::kInfo, "runner", "unit dispatched",
      {{"unit", 3}, {"pid", static_cast<std::int64_t>(77)}, {"note", "two words"}});
  EXPECT_NE(line.find("INFO"), std::string::npos);
  EXPECT_NE(line.find("runner: unit dispatched"), std::string::npos);
  EXPECT_NE(line.find("unit=3"), std::string::npos);
  EXPECT_NE(line.find("pid=77"), std::string::npos);
  EXPECT_NE(line.find("note=\"two words\""), std::string::npos);
  EXPECT_NE(line.find("Z "), std::string::npos) << "timestamp missing";
}

TEST(Log, ThresholdGates) {
  using util::log::Level;
  const Level saved = util::log::threshold();
  util::log::set_threshold(Level::kWarn);
  EXPECT_FALSE(util::log::enabled(Level::kInfo));
  EXPECT_TRUE(util::log::enabled(Level::kError));
  util::log::set_threshold(saved);
}

TEST(Trace, DisabledModeRecordsNothing) {
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  rec.set_enabled(false);
  rec.clear();
  {
    obs::Span span("never");
    span.arg("k", 1);
    obs::Span two("pre", "fix");
    rec.instant("nope");
    rec.counter("none", 1.0);
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(Trace, ExportParsesAndSpansNest) {
  const TraceOn on;
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  rec.set_process_name("test process");
  {
    obs::Span outer("outer");
    outer.arg("k", std::uint64_t{42});
    { obs::Span inner("inner:", "first"); }
    { obs::Span inner("inner:", "second"); }
    rec.instant("marker");
  }
  rec.counter("test.counter", 3.0);

  const Value doc = Value::parse(rec.export_json().dump_string(0));
  expect_well_nested(doc);
  EXPECT_TRUE(has_span(doc, "outer"));
  EXPECT_TRUE(has_span(doc, "inner:first"));
  EXPECT_TRUE(has_span(doc, "inner:second"));
  bool saw_instant = false, saw_counter = false, saw_meta = false;
  for (const Value& ev : trace_events(doc)) {
    const std::string ph = ev.get_string("ph", "");
    if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(ev.get_string("s", ""), "t");
    }
    if (ph == "C" && ev.get_string("name", "") == "test.counter") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(ev.find("args")->find("value")->as_double(), 3.0);
    }
    if (ph == "M") saw_meta = true;
    EXPECT_EQ(ev.find("pid")->as_int(), static_cast<std::int64_t>(::getpid()));
  }
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_meta);
}

TEST(Trace, CompleteOnUsesSyntheticTrack) {
  const TraceOn on;
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  const double t0 = obs::now_us();
  rec.complete_on(10001, "attempt", t0, 5.0);
  rec.complete_on(10101, "attempt", t0 + 1.0, 5.0);  // overlaps, own track
  const Value doc = rec.export_json();
  expect_well_nested(doc);
  std::vector<std::uint64_t> tids;
  for (const Value& ev : trace_events(doc)) tids.push_back(ev.get_uint("tid", 0));
  EXPECT_NE(std::find(tids.begin(), tids.end(), 10001u), tids.end());
  EXPECT_NE(std::find(tids.begin(), tids.end(), 10101u), tids.end());
}

TEST(Trace, ImportStitchesWorkerFilePreservingPid) {
  const TraceOn on;
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  const TempFile file("worker_trace");

  // Forge a "worker" export: a span under a foreign pid, plus one bogus
  // pid=0 event that the importer must refuse (0 means "this process" and
  // an imported event must never masquerade as the importing process).
  {
    std::ofstream out(file.path);
    out << "{\"traceEvents\":[{\"name\":\"worker:run\",\"ph\":\"X\","
           "\"ts\":1.0,\"dur\":2.0,\"pid\":999999,\"tid\":1},"
           "{\"name\":\"bogus\",\"ph\":\"X\",\"ts\":1.0,\"dur\":1.0,"
           "\"pid\":0,\"tid\":1}]}\n";
  }
  EXPECT_TRUE(rec.import_file(file.path));
  { obs::Span span("coordinator"); }

  const Value doc = rec.export_json();
  bool saw_worker = false, saw_bogus = false, saw_local = false;
  for (const Value& ev : trace_events(doc)) {
    const std::string name = ev.get_string("name", "");
    if (name == "worker:run") {
      saw_worker = true;
      EXPECT_EQ(ev.find("pid")->as_int(), 999999);
    }
    if (name == "bogus") saw_bogus = true;
    if (name == "coordinator") {
      saw_local = true;
      EXPECT_EQ(ev.find("pid")->as_int(), static_cast<std::int64_t>(::getpid()));
    }
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_FALSE(saw_bogus);
  EXPECT_TRUE(saw_local);
}

TEST(Trace, ImportToleratesMissingAndTruncatedFiles) {
  const TraceOn on;
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  EXPECT_FALSE(rec.import_file("/nonexistent/kronotri_trace.json"));
  const TempFile file("truncated");
  { std::ofstream(file.path) << "{\"traceEvents\":[{\"name\":\"x\","; }
  EXPECT_FALSE(rec.import_file(file.path));
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(Trace, RoundTripsThroughFile) {
  const TraceOn on;
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  { obs::Span span("roundtrip"); }
  const TempFile file("roundtrip");
  ASSERT_TRUE(rec.export_file(file.path));
  std::ifstream in(file.path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const Value doc = Value::parse(text);
  EXPECT_TRUE(has_span(doc, "roundtrip"));
}

TEST(TraceApi, RunEmitsStageSpansAndCounters) {
  const TraceOn on;
  const api::RunPlan plan = api::RunPlan::parse(kPlanText);
  const api::RunReport report = api::run(plan);
  ASSERT_TRUE(report.pass);

  const Value doc = obs::TraceRecorder::instance().export_json();
  expect_well_nested(doc);
  EXPECT_TRUE(has_span(doc, "api::run"));
  EXPECT_TRUE(has_span(doc, "stage:generate"));
  EXPECT_TRUE(has_span(doc, "stage:stream"));
  bool saw_analyze = false, saw_shard = false;
  for (const Value& ev : trace_events(doc)) {
    const std::string name = ev.get_string("name", "");
    if (name.rfind("analyze:", 0) == 0) saw_analyze = true;
    if (name == "validate:shard") saw_shard = true;
  }
  EXPECT_TRUE(saw_analyze);
  EXPECT_TRUE(saw_shard);

  // The per-run counter delta reaches the report and names the stream work.
  ASSERT_TRUE(report.counters.is_object());
  EXPECT_GT(report.counters.get_uint("api.edges_streamed", 0), 0u);
  EXPECT_GT(report.counters.get_uint("validate.shards_executed", 0), 0u);
}

TEST(TraceApi, TracingDoesNotPerturbResults) {
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = 2;
  const std::string baseline =
      runner::comparable(api::run(plan).to_json()).dump_string(2);

  // OMP 1/2/8 with the recorder hot: bit-identical per comparable().
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (const int t : {1, 2, 8}) {
    omp_set_num_threads(t);
#else
  {
#endif
    const TraceOn on;
    const std::string traced =
        runner::comparable(api::run(plan).to_json()).dump_string(2);
    EXPECT_EQ(traced, baseline);
    EXPECT_GT(obs::TraceRecorder::instance().event_count(), 0u);
  }
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
}

TEST(TraceRunner, WorkerTracesStitchUnderDistinctPids) {
  if (runner::default_worker_exe().empty()) {
    GTEST_SKIP() << "worker binary not resolvable from this test binary";
  }
  const TraceOn on;
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = 1;
  runner::Options opt;
  opt.workers = 2;
  opt.straggler_min_s = 60;
  const api::RunReport report = runner::execute(plan, opt);
  ASSERT_TRUE(report.pass) << report.error;

  const Value doc = obs::TraceRecorder::instance().export_json();
  expect_well_nested(doc);
  std::vector<std::int64_t> pids;
  bool saw_attempt = false, saw_worker_span = false;
  for (const Value& ev : trace_events(doc)) {
    const std::int64_t pid = ev.find("pid")->as_int();
    if (std::find(pids.begin(), pids.end(), pid) == pids.end()) {
      pids.push_back(pid);
    }
    const std::string name = ev.get_string("name", "");
    if (name == "attempt") saw_attempt = true;
    if (name == "worker:run") saw_worker_span = true;
  }
  EXPECT_TRUE(has_span(doc, "runner::execute"));
  EXPECT_TRUE(saw_attempt) << "coordinator attempt spans missing";
  EXPECT_TRUE(saw_worker_span) << "worker trace not stitched in";
  EXPECT_GE(pids.size(), 2u) << "expected coordinator + >=1 worker pid";
}

}  // namespace
