// Tests for util::json — the one JSON reader/writer behind plan files,
// RunReports, ValidationReports and the BENCH_*.json artifacts.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "util/json.hpp"
#include "util/runmeta.hpp"

namespace {

using kronotri::util::json::Value;

TEST(Json, ScalarsDumpCanonically) {
  EXPECT_EQ(Value().dump_string(), "null");
  EXPECT_EQ(Value(true).dump_string(), "true");
  EXPECT_EQ(Value(false).dump_string(), "false");
  EXPECT_EQ(Value(42u).dump_string(), "42");
  EXPECT_EQ(Value(-7).dump_string(), "-7");
  EXPECT_EQ(Value("hi").dump_string(), "\"hi\"");
  EXPECT_EQ(Value(1.5).dump_string(), "1.5");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Value("a\"b\\c\n\t").dump_string(),
            "\"a\\\"b\\\\c\\n\\t\"");
  // Control characters become \u00XX.
  EXPECT_EQ(Value(std::string(1, '\x01')).dump_string(), "\"\\u0001\"");
}

TEST(Json, U64CountsRoundTripExactly) {
  // Triangle counts exceed double precision; the writer must keep them
  // integral end to end.
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  Value v = Value::object();
  v.set("count", big);
  const Value back = Value::parse(v.dump_string());
  EXPECT_EQ(back.find("count")->as_uint(), big);
}

TEST(Json, ParsesNestedDocument) {
  const Value v = Value::parse(R"json({
    "spec": "kron:(hubcycle)x(clique:n=3)",
    "analyses": [{"name": "census", "params": {"truth": 1}}, "degree"],
    "options": {"threads": 4, "stream": false},
    "pi": 3.25,
    "neg": -12,
    "nothing": null
  })json");
  EXPECT_EQ(v.get_string("spec", ""), "kron:(hubcycle)x(clique:n=3)");
  EXPECT_EQ(v.find("analyses")->size(), 2u);
  EXPECT_EQ(v.find("analyses")->items()[1].as_string(), "degree");
  EXPECT_EQ(v.find("options")->get_uint("threads", 0), 4u);
  EXPECT_FALSE(v.find("options")->get_bool("stream", true));
  EXPECT_DOUBLE_EQ(v.find("pi")->as_double(), 3.25);
  EXPECT_EQ(v.find("neg")->as_int(), -12);
  EXPECT_TRUE(v.find("nothing")->is_null());
}

TEST(Json, ParseDumpParseIsIdentityOnTree) {
  const char* doc =
      R"json({"a": [1, 2, {"b": "x"}], "c": {"d": true, "e": [], "f": {}}})json";
  const Value v = Value::parse(doc);
  const Value w = Value::parse(v.dump_string());
  EXPECT_EQ(v.dump_string(), w.dump_string());
  // And the compact form parses too.
  EXPECT_EQ(Value::parse(v.dump_string(0)).dump_string(), v.dump_string());
}

TEST(Json, StringEscapesRoundTrip) {
  Value v = Value::object();
  v.set("s", "line1\nline2\t\"quoted\" \\slash");
  const Value back = Value::parse(v.dump_string());
  EXPECT_EQ(back.find("s")->as_string(), "line1\nline2\t\"quoted\" \\slash");
  // \u escapes decode.
  EXPECT_EQ(Value::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1} trailing", "tru",
        "\"unterminated", "{\"a\": 01x}", "nan"}) {
    EXPECT_THROW((void)Value::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, DeepNestingIsAnErrorNotAStackOverflow) {
  // 300 levels exceeds the 256-level ceiling; the parser must raise
  // invalid_argument instead of recursing into a segfault.
  const std::string deep =
      std::string(300, '[') + "1" + std::string(300, ']');
  EXPECT_THROW((void)Value::parse(deep), std::invalid_argument);
  // 100 levels is fine.
  const std::string ok = std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_NO_THROW((void)Value::parse(ok));
}

TEST(Json, ObjectSetReplacesAndPreservesOrder) {
  Value v = Value::object();
  v.set("z", 1);
  v.set("a", 2);
  v.set("z", 3);
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[0].second.as_uint(), 3u);
  EXPECT_EQ(v.members()[1].first, "a");
}

TEST(Json, TypeMismatchesThrow) {
  EXPECT_THROW((void)Value(1.5).as_uint(), std::invalid_argument);
  EXPECT_THROW((void)Value("x").as_bool(), std::invalid_argument);
  EXPECT_THROW((void)Value(-1).as_uint(), std::invalid_argument);
  EXPECT_THROW((void)Value(true).items(), std::invalid_argument);
  // In-range crossovers are allowed.
  EXPECT_EQ(Value(7).as_uint(), 7u);
  EXPECT_EQ(Value(7u).as_int(), 7);
}

TEST(Json, CanonicalDumpSortsKeysRecursivelyWithoutWhitespace) {
  const Value v = Value::parse(
      "{\"z\":1,\"a\":{\"q\":true,\"b\":[3,2.5,-1]},\"m\":\"x\\n\"}");
  EXPECT_EQ(v.dump_canonical_string(),
            "{\"a\":{\"b\":[3,2.5,-1],\"q\":true},\"m\":\"x\\n\",\"z\":1}");
  // Insertion order is ignored: the same data built in any order
  // canonicalizes to the same bytes — the property that makes the service
  // cache key sound.
  Value reordered = Value::object();
  Value inner = Value::object();
  inner.set("b", Value::parse("[3,2.5,-1]"));
  inner.set("q", true);
  reordered.set("m", "x\n");
  reordered.set("a", std::move(inner));
  reordered.set("z", 1u);
  EXPECT_EQ(reordered.dump_canonical_string(), v.dump_canonical_string());
  // dump() itself is untouched: insertion order preserved.
  EXPECT_NE(v.dump_string(0), v.dump_canonical_string());
  // Scalars and arrays pass through with dump()'s exact number formatting.
  EXPECT_EQ(Value::parse("[1,2,3]").dump_canonical_string(), "[1,2,3]");
  EXPECT_EQ(Value(2.5).dump_canonical_string(), "2.5");
  EXPECT_EQ(Value::object().dump_canonical_string(), "{}");
}

TEST(Json, Hash64PinsFnv1aDigests) {
  using kronotri::util::json::hash64;
  // Reference FNV-1a values (offset basis for "", standard vector for
  // "abc") — pinned so a platform or refactor can never silently change
  // cache identities.
  EXPECT_EQ(hash64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(hash64("abc"), 0xe71fa2190541574bull);
  EXPECT_EQ(hash64("kronotri"), 0x2bae604f65b92833ull);
  const Value v = Value::parse(
      "{\"z\":1,\"a\":{\"q\":true,\"b\":[3,2.5,-1]},\"m\":\"x\\n\"}");
  EXPECT_EQ(hash64(v.dump_canonical_string()), 0x557fc264766063edull);
  EXPECT_NE(hash64("a"), hash64("b"));
}

TEST(Json, ParseRejectsTrailingGarbagePins) {
  // The single-document contract the newline-framed service protocol
  // depends on: nothing non-whitespace may follow the document.
  EXPECT_THROW((void)Value::parse("{\"a\":1} x"), std::invalid_argument);
  EXPECT_THROW((void)Value::parse("[1,2] [3]"), std::invalid_argument);
  EXPECT_THROW((void)Value::parse("1 2"), std::invalid_argument);
  EXPECT_THROW((void)Value::parse("true false"), std::invalid_argument);
  EXPECT_NO_THROW((void)Value::parse("  {\"a\":1}  \n"));
}

TEST(Json, RunMetadataIsSelfDescribing) {
  const Value meta = kronotri::util::run_metadata(8192);
  EXPECT_GE(meta.get_uint("hardware_concurrency", 0), 1u);
  EXPECT_GE(meta.get_uint("omp_max_threads", 0), 1u);
  EXPECT_EQ(meta.get_uint("batch_size", 0), 8192u);
  EXPECT_FALSE(meta.get_string("git_describe", "").empty());
  // It serializes as part of a larger artifact.
  std::ostringstream os;
  meta.dump(os);
  EXPECT_NE(os.str().find("hardware_concurrency"), std::string::npos);
}

}  // namespace
