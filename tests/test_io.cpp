// Unit tests for graph file I/O (plain edge lists and MatrixMarket).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/io.hpp"
#include "gen/classic.hpp"
#include "helpers.hpp"

namespace {

using namespace kronotri;

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = ::testing::TempDir() + "kronotri_io_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".txt";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Io, ReadsPlainEdgeList) {
  TempFile f("# comment\n0 1\n1 2\n\n2 0\n");
  const Graph g = io::read_edge_list(f.path());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.nnz(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Io, SymmetrizeOption) {
  TempFile f("0 1\n");
  io::ReadOptions opts;
  opts.symmetrize = true;
  const Graph g = io::read_edge_list(f.path(), opts);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.nnz(), 2u);
}

TEST(Io, OneBasedOption) {
  TempFile f("1 2\n2 3\n");
  io::ReadOptions opts;
  opts.one_based = true;
  const Graph g = io::read_edge_list(f.path(), opts);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Io, DropSelfLoops) {
  TempFile f("0 0\n0 1\n1 1\n");
  io::ReadOptions opts;
  opts.drop_self_loops = true;
  const Graph g = io::read_edge_list(f.path(), opts);
  EXPECT_FALSE(g.has_self_loops());
  EXPECT_EQ(g.nnz(), 1u);
}

TEST(Io, MatrixMarketGeneral) {
  TempFile f(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "4 4 3\n"
      "1 2\n"
      "2 3\n"
      "4 1\n");
  const Graph g = io::read_edge_list(f.path());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.nnz(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 0));
}

TEST(Io, MatrixMarketSymmetricExpands) {
  TempFile f(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const Graph g = io::read_edge_list(f.path());
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.nnz(), 3u);  // (1,0), (0,1), loop (2,2)
  EXPECT_TRUE(g.has_self_loops());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(io::read_edge_list("/nonexistent/graph.txt"),
               std::runtime_error);
}

TEST(Io, BadLineThrows) {
  TempFile f("0 1\nnot an edge\n");
  EXPECT_THROW(io::read_edge_list(f.path()), std::runtime_error);
}

TEST(Io, ZeroIdInOneBasedThrows) {
  TempFile f("0 1\n");
  io::ReadOptions opts;
  opts.one_based = true;
  EXPECT_THROW(io::read_edge_list(f.path(), opts), std::runtime_error);
}

TEST(Io, WriteReadRoundTrip) {
  const Graph g = gen::hub_cycle();
  const std::string path = ::testing::TempDir() + "kronotri_roundtrip.txt";
  io::write_edge_list(g, path);
  const Graph back = io::read_edge_list(path);
  EXPECT_TRUE(back == g);
  std::remove(path.c_str());
}

TEST(Io, VertexCountsRoundTrip) {
  const std::vector<count_t> counts = {0, 5, 0, 123456789012ULL, 7};
  const std::string path = ::testing::TempDir() + "kronotri_counts.txt";
  io::write_vertex_counts(counts, path);
  EXPECT_EQ(io::read_vertex_counts(path), counts);
  std::remove(path.c_str());
}

TEST(Io, VertexCountsBadLineThrows) {
  TempFile f("0 1\nbroken\n");
  EXPECT_THROW(io::read_vertex_counts(f.path()), std::runtime_error);
  EXPECT_THROW(io::read_vertex_counts("/nonexistent/counts.txt"),
               std::runtime_error);
}

TEST(Io, RoundTripPreservesDirectedGraph) {
  const Graph g = kt_test::random_directed(15, 0.2, 99);
  const std::string path = ::testing::TempDir() + "kronotri_directed.txt";
  io::write_edge_list(g, path);
  const Graph back = io::read_edge_list(path);
  // Vertex count can shrink if trailing vertices are isolated; compare edges.
  for (vid u = 0; u < back.num_vertices(); ++u) {
    for (const vid v : back.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(u, v));
    }
  }
  EXPECT_EQ(back.nnz(), g.nnz());
  std::remove(path.c_str());
}

}  // namespace
