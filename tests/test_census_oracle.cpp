// Tests for the directed and labeled census oracles — per-flavor point
// queries on product graphs, validated against brute-force censuses of
// materialized products.
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/census_oracle.hpp"
#include "kron/product.hpp"
#include "triangle/bruteforce.hpp"
#include "truss/decompose.hpp"

namespace {

using namespace kronotri;
using kron::DirectedTriangleOracle;
using kron::LabeledTriangleOracle;

class DirectedOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectedOracleSweep, VertexQueriesMatchBruteForce) {
  const Graph a = kt_test::random_directed(5, 0.35, GetParam());
  const Graph b = kt_test::random_undirected(4, 0.5, GetParam() + 1, 0.3);
  const DirectedTriangleOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);
  const auto direct = triangle::brute::directed_vertex_census(c);
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    const auto flavor = static_cast<triangle::VertexTriType>(f);
    count_t sum = 0;
    for (vid p = 0; p < oracle.num_vertices(); ++p) {
      EXPECT_EQ(oracle.vertex_triangles(flavor, p),
                direct[static_cast<std::size_t>(f)][p])
          << triangle::to_string(flavor) << " @ " << p;
      sum += direct[static_cast<std::size_t>(f)][p];
    }
    EXPECT_EQ(oracle.total(flavor), sum);
  }
}

TEST_P(DirectedOracleSweep, EdgeQueriesMatchBruteForce) {
  const Graph a = kt_test::random_directed(4, 0.4, GetParam() + 50);
  const Graph b = kt_test::random_undirected(4, 0.5, GetParam() + 51);
  const DirectedTriangleOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);
  const auto direct = triangle::brute::directed_edge_census(c);
  for (int f = 0; f < triangle::kNumEdgeTriTypes; ++f) {
    const auto flavor = static_cast<triangle::EdgeTriType>(f);
    const CountCsr& expected = direct[static_cast<std::size_t>(f)];
    for (vid p = 0; p < c.num_vertices(); ++p) {
      for (vid q = 0; q < c.num_vertices(); ++q) {
        const auto val = oracle.edge_triangles(flavor, p, q);
        if (expected.contains(p, q)) {
          ASSERT_TRUE(val.has_value())
              << triangle::to_string(flavor) << " @ (" << p << "," << q << ")";
          ASSERT_EQ(*val, expected.at(p, q))
              << triangle::to_string(flavor) << " @ (" << p << "," << q << ")";
        } else {
          ASSERT_FALSE(val.has_value())
              << triangle::to_string(flavor) << " @ (" << p << "," << q << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedOracleSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(DirectedOracle, RejectsBadFactors) {
  const Graph a = kt_test::random_directed(4, 0.4, 1);
  const Graph b_dir = kt_test::random_directed(4, 0.4, 2);
  EXPECT_THROW(DirectedTriangleOracle(a, b_dir), std::invalid_argument);
}

class LabeledOracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LabeledOracleSweep, VertexQueriesMatchBruteForce) {
  const std::uint32_t big_l = 3;
  const Graph a = kt_test::random_undirected(5, 0.5, GetParam());
  const auto lab = gen::random_labels(5, big_l, GetParam() + 1);
  const Graph b = kt_test::random_undirected(4, 0.5, GetParam() + 2, 0.4);
  const LabeledTriangleOracle oracle(a, lab, b);
  const Graph c = kron::kron_graph(a, b);
  const auto lc = oracle.product_labels();
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        const auto expected =
            triangle::brute::labeled_vertex_participation(c, lc, q1, q2, q3);
        for (vid p = 0; p < c.num_vertices(); ++p) {
          // Query with both orderings of the outer pair.
          ASSERT_EQ(oracle.vertex_triangles(q1, q2, q3, p), expected[p]);
          ASSERT_EQ(oracle.vertex_triangles(q1, q3, q2, p), expected[p]);
        }
      }
    }
  }
}

TEST_P(LabeledOracleSweep, EdgeQueriesMatchBruteForce) {
  const std::uint32_t big_l = 2;
  const Graph a = kt_test::random_undirected(5, 0.5, GetParam() + 80);
  const auto lab = gen::random_labels(5, big_l, GetParam() + 81);
  const Graph b = kt_test::random_undirected(3, 0.7, GetParam() + 82);
  const LabeledTriangleOracle oracle(a, lab, b);
  const Graph c = kron::kron_graph(a, b);
  const auto lc = oracle.product_labels();
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = 0; q3 < big_l; ++q3) {
        const auto expected =
            triangle::brute::labeled_edge_participation(c, lc, q1, q2, q3);
        for (vid p = 0; p < c.num_vertices(); ++p) {
          for (vid q = 0; q < c.num_vertices(); ++q) {
            const auto val = oracle.edge_triangles(q1, q2, q3, p, q);
            if (expected.contains(p, q)) {
              ASSERT_TRUE(val.has_value());
              ASSERT_EQ(*val, expected.at(p, q));
            } else {
              ASSERT_FALSE(val.has_value());
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabeledOracleSweep,
                         ::testing::Range<std::uint64_t>(0, 4));

TEST(LabeledOracle, RejectsOutOfRangeLabels) {
  const Graph a = gen::clique(3);
  triangle::Labeling lab;
  lab.num_labels = 2;
  lab.label = {0, 1, 0};
  const Graph b = gen::clique(3);
  const LabeledTriangleOracle oracle(a, lab, b);
  EXPECT_THROW((void)oracle.vertex_triangles(2, 0, 0, 0),
               std::invalid_argument);
}

// -- 3-factor compositions -------------------------------------------------
//
// The census oracles are stated for C = A ⊗ B, but ⊗ is associative: any
// `kron:` chain A ⊗ B₁ ⊗ B₂ is also A ⊗ (B₁ ⊗ B₂). These pins run the
// oracles over 3-factor compositions (B = B₁ ⊗ B₂ built once, undirected ×
// undirected stays undirected) against the brute-force census of the fully
// materialized 3-factor product.

TEST(DirectedOracleThreeFactor, VertexAndEdgeQueriesMatchBruteForce) {
  const Graph a = kt_test::random_directed(4, 0.4, 11);
  const Graph b1 = kt_test::random_undirected(3, 0.6, 12, 0.4);
  const Graph b2 = kt_test::random_undirected(3, 0.6, 13, 0.5);
  const Graph b = kron::kron_graph(b1, b2);
  const DirectedTriangleOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);  // = a ⊗ b1 ⊗ b2 by associativity
  const auto vertex = triangle::brute::directed_vertex_census(c);
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    const auto flavor = static_cast<triangle::VertexTriType>(f);
    count_t sum = 0;
    for (vid p = 0; p < oracle.num_vertices(); ++p) {
      ASSERT_EQ(oracle.vertex_triangles(flavor, p),
                vertex[static_cast<std::size_t>(f)][p])
          << triangle::to_string(flavor) << " @ " << p;
      sum += vertex[static_cast<std::size_t>(f)][p];
    }
    EXPECT_EQ(oracle.total(flavor), sum);
  }
  const auto edge = triangle::brute::directed_edge_census(c);
  for (int f = 0; f < triangle::kNumEdgeTriTypes; ++f) {
    const auto flavor = static_cast<triangle::EdgeTriType>(f);
    const CountCsr& expected = edge[static_cast<std::size_t>(f)];
    for (vid p = 0; p < c.num_vertices(); ++p) {
      for (vid q = 0; q < c.num_vertices(); ++q) {
        const auto val = oracle.edge_triangles(flavor, p, q);
        if (expected.contains(p, q)) {
          ASSERT_TRUE(val.has_value());
          ASSERT_EQ(*val, expected.at(p, q))
              << triangle::to_string(flavor) << " @ (" << p << "," << q << ")";
        } else {
          ASSERT_FALSE(val.has_value());
        }
      }
    }
  }
}

TEST(LabeledOracleThreeFactor, VertexAndEdgeQueriesMatchBruteForce) {
  const std::uint32_t big_l = 2;
  const Graph a = kt_test::random_undirected(4, 0.6, 21);
  const auto lab = gen::random_labels(4, big_l, 22);
  const Graph b1 = kt_test::random_undirected(3, 0.6, 23, 0.4);
  const Graph b2 = kt_test::random_undirected(2, 0.9, 24, 0.5);
  const Graph b = kron::kron_graph(b1, b2);
  const LabeledTriangleOracle oracle(a, lab, b);
  const Graph c = kron::kron_graph(a, b);
  const auto lc = oracle.product_labels();
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        const auto expected =
            triangle::brute::labeled_vertex_participation(c, lc, q1, q2, q3);
        for (vid p = 0; p < c.num_vertices(); ++p) {
          ASSERT_EQ(oracle.vertex_triangles(q1, q2, q3, p), expected[p])
              << "(" << q1 << "," << q2 << "," << q3 << ") @ " << p;
        }
      }
      for (std::uint32_t q3 = 0; q3 < big_l; ++q3) {
        const auto expected =
            triangle::brute::labeled_edge_participation(c, lc, q1, q2, q3);
        for (vid p = 0; p < c.num_vertices(); ++p) {
          for (vid q = 0; q < c.num_vertices(); ++q) {
            const auto val = oracle.edge_triangles(q1, q2, q3, p, q);
            if (expected.contains(p, q)) {
              ASSERT_TRUE(val.has_value());
              ASSERT_EQ(*val, expected.at(p, q));
            } else {
              ASSERT_FALSE(val.has_value());
            }
          }
        }
      }
    }
  }
}

TEST(TrussSubgraph, ExtractsKTruss) {
  // Ex. 2 product: T⁽⁴⁾ has 80 edges and is itself a valid 4-truss.
  const Graph a = gen::hub_cycle();
  const Graph c = kron::kron_graph(a, a);
  const auto t = truss::decompose(c);
  const Graph t4 = truss::truss_subgraph(t, 4);
  EXPECT_EQ(t4.num_undirected_edges(), 80u);
  EXPECT_TRUE(t4.is_undirected());
  // Every edge of the extracted subgraph closes ≥ 2 triangles inside it.
  const auto t4_decomp = truss::decompose(t4);
  for (const count_t v : t4_decomp.truss_number.values()) {
    EXPECT_GE(v, 4u);
  }
  // κ beyond max truss gives the empty graph.
  EXPECT_EQ(truss::truss_subgraph(t, 5).nnz(), 0u);
  // κ = 3 keeps everything here (all edges are in the 3-truss).
  EXPECT_EQ(truss::truss_subgraph(t, 3).nnz(), c.nnz());
}

}  // namespace
