// The kronotri command-line tool. All logic lives in src/cli/commands.cpp
// so it can be unit tested; this is only the process entry point.
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return kronotri::cli::run(argc, argv, std::cout, std::cerr);
}
