# Empty dependencies file for example_egonet_validation.
# This may be replaced when dependencies are built.
