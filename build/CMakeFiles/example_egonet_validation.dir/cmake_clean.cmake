file(REMOVE_RECURSE
  "CMakeFiles/example_egonet_validation.dir/examples/egonet_validation.cpp.o"
  "CMakeFiles/example_egonet_validation.dir/examples/egonet_validation.cpp.o.d"
  "examples/egonet_validation"
  "examples/egonet_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_egonet_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
