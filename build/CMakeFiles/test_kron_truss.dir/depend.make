# Empty dependencies file for test_kron_truss.
# This may be replaced when dependencies are built.
