file(REMOVE_RECURSE
  "CMakeFiles/test_kron_truss.dir/tests/test_kron_truss.cpp.o"
  "CMakeFiles/test_kron_truss.dir/tests/test_kron_truss.cpp.o.d"
  "test_kron_truss"
  "test_kron_truss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron_truss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
