file(REMOVE_RECURSE
  "CMakeFiles/test_triangle_directed.dir/tests/test_triangle_directed.cpp.o"
  "CMakeFiles/test_triangle_directed.dir/tests/test_triangle_directed.cpp.o.d"
  "test_triangle_directed"
  "test_triangle_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangle_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
