# Empty dependencies file for test_triangle_directed.
# This may be replaced when dependencies are built.
