# Empty dependencies file for bench_ex1_cliques.
# This may be replaced when dependencies are built.
