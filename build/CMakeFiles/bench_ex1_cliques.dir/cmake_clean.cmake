file(REMOVE_RECURSE
  "CMakeFiles/bench_ex1_cliques.dir/bench/bench_ex1_cliques.cpp.o"
  "CMakeFiles/bench_ex1_cliques.dir/bench/bench_ex1_cliques.cpp.o.d"
  "bench/bench_ex1_cliques"
  "bench/bench_ex1_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex1_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
