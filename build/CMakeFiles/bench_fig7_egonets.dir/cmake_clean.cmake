file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_egonets.dir/bench/bench_fig7_egonets.cpp.o"
  "CMakeFiles/bench_fig7_egonets.dir/bench/bench_fig7_egonets.cpp.o.d"
  "bench/bench_fig7_egonets"
  "bench/bench_fig7_egonets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_egonets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
