# Empty dependencies file for bench_fig7_egonets.
# This may be replaced when dependencies are built.
