file(REMOVE_RECURSE
  "CMakeFiles/test_components.dir/tests/test_components.cpp.o"
  "CMakeFiles/test_components.dir/tests/test_components.cpp.o.d"
  "test_components"
  "test_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
