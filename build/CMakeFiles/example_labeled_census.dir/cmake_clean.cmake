file(REMOVE_RECURSE
  "CMakeFiles/example_labeled_census.dir/examples/labeled_census.cpp.o"
  "CMakeFiles/example_labeled_census.dir/examples/labeled_census.cpp.o.d"
  "examples/labeled_census"
  "examples/labeled_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_labeled_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
