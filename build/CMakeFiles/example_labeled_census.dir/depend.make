# Empty dependencies file for example_labeled_census.
# This may be replaced when dependencies are built.
