file(REMOVE_RECURSE
  "CMakeFiles/test_csr.dir/tests/test_csr.cpp.o"
  "CMakeFiles/test_csr.dir/tests/test_csr.cpp.o.d"
  "test_csr"
  "test_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
