# Empty dependencies file for test_triangle_labeled.
# This may be replaced when dependencies are built.
