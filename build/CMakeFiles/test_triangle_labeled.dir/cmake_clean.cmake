file(REMOVE_RECURSE
  "CMakeFiles/test_triangle_labeled.dir/tests/test_triangle_labeled.cpp.o"
  "CMakeFiles/test_triangle_labeled.dir/tests/test_triangle_labeled.cpp.o.d"
  "test_triangle_labeled"
  "test_triangle_labeled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangle_labeled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
