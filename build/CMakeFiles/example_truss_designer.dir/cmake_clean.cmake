file(REMOVE_RECURSE
  "CMakeFiles/example_truss_designer.dir/examples/truss_designer.cpp.o"
  "CMakeFiles/example_truss_designer.dir/examples/truss_designer.cpp.o.d"
  "examples/truss_designer"
  "examples/truss_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_truss_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
