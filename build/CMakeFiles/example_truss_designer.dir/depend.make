# Empty dependencies file for example_truss_designer.
# This may be replaced when dependencies are built.
