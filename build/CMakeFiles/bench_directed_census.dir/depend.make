# Empty dependencies file for bench_directed_census.
# This may be replaced when dependencies are built.
