file(REMOVE_RECURSE
  "CMakeFiles/bench_directed_census.dir/bench/bench_directed_census.cpp.o"
  "CMakeFiles/bench_directed_census.dir/bench/bench_directed_census.cpp.o.d"
  "bench/bench_directed_census"
  "bench/bench_directed_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directed_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
