# Empty dependencies file for bench_kron_vs_direct.
# This may be replaced when dependencies are built.
