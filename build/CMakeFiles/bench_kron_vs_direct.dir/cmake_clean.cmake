file(REMOVE_RECURSE
  "CMakeFiles/bench_kron_vs_direct.dir/bench/bench_kron_vs_direct.cpp.o"
  "CMakeFiles/bench_kron_vs_direct.dir/bench/bench_kron_vs_direct.cpp.o.d"
  "bench/bench_kron_vs_direct"
  "bench/bench_kron_vs_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kron_vs_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
