# Empty dependencies file for bench_truss_transfer.
# This may be replaced when dependencies are built.
