file(REMOVE_RECURSE
  "CMakeFiles/bench_truss_transfer.dir/bench/bench_truss_transfer.cpp.o"
  "CMakeFiles/bench_truss_transfer.dir/bench/bench_truss_transfer.cpp.o.d"
  "bench/bench_truss_transfer"
  "bench/bench_truss_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_truss_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
