# Empty dependencies file for example_trillion_scale_census.
# This may be replaced when dependencies are built.
