file(REMOVE_RECURSE
  "CMakeFiles/example_trillion_scale_census.dir/examples/trillion_scale_census.cpp.o"
  "CMakeFiles/example_trillion_scale_census.dir/examples/trillion_scale_census.cpp.o.d"
  "examples/trillion_scale_census"
  "examples/trillion_scale_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trillion_scale_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
