# Empty dependencies file for bench_stochastic_vs_nonstochastic.
# This may be replaced when dependencies are built.
