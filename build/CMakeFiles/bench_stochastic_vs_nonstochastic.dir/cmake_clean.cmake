file(REMOVE_RECURSE
  "CMakeFiles/bench_stochastic_vs_nonstochastic.dir/bench/bench_stochastic_vs_nonstochastic.cpp.o"
  "CMakeFiles/bench_stochastic_vs_nonstochastic.dir/bench/bench_stochastic_vs_nonstochastic.cpp.o.d"
  "bench/bench_stochastic_vs_nonstochastic"
  "bench/bench_stochastic_vs_nonstochastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stochastic_vs_nonstochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
