# Empty dependencies file for kronotri-cli.
# This may be replaced when dependencies are built.
