file(REMOVE_RECURSE
  "CMakeFiles/kronotri-cli.dir/tools/kronotri_main.cpp.o"
  "CMakeFiles/kronotri-cli.dir/tools/kronotri_main.cpp.o.d"
  "kronotri"
  "kronotri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kronotri-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
