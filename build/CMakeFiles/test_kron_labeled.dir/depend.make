# Empty dependencies file for test_kron_labeled.
# This may be replaced when dependencies are built.
