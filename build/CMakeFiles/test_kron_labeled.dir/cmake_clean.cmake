file(REMOVE_RECURSE
  "CMakeFiles/test_kron_labeled.dir/tests/test_kron_labeled.cpp.o"
  "CMakeFiles/test_kron_labeled.dir/tests/test_kron_labeled.cpp.o.d"
  "test_kron_labeled"
  "test_kron_labeled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron_labeled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
