file(REMOVE_RECURSE
  "CMakeFiles/bench_labeled_census.dir/bench/bench_labeled_census.cpp.o"
  "CMakeFiles/bench_labeled_census.dir/bench/bench_labeled_census.cpp.o.d"
  "bench/bench_labeled_census"
  "bench/bench_labeled_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_labeled_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
