# Empty dependencies file for bench_labeled_census.
# This may be replaced when dependencies are built.
