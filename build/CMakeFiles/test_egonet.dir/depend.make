# Empty dependencies file for test_egonet.
# This may be replaced when dependencies are built.
