file(REMOVE_RECURSE
  "CMakeFiles/test_egonet.dir/tests/test_egonet.cpp.o"
  "CMakeFiles/test_egonet.dir/tests/test_egonet.cpp.o.d"
  "test_egonet"
  "test_egonet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_egonet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
