file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_factor.dir/bench/bench_multi_factor.cpp.o"
  "CMakeFiles/bench_multi_factor.dir/bench/bench_multi_factor.cpp.o.d"
  "bench/bench_multi_factor"
  "bench/bench_multi_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
