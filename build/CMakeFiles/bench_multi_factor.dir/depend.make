# Empty dependencies file for bench_multi_factor.
# This may be replaced when dependencies are built.
