# Empty dependencies file for test_census_oracle.
# This may be replaced when dependencies are built.
