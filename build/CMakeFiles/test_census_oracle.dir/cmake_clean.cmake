file(REMOVE_RECURSE
  "CMakeFiles/test_census_oracle.dir/tests/test_census_oracle.cpp.o"
  "CMakeFiles/test_census_oracle.dir/tests/test_census_oracle.cpp.o.d"
  "test_census_oracle"
  "test_census_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_census_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
