# Empty dependencies file for kronotri.
# This may be replaced when dependencies are built.
