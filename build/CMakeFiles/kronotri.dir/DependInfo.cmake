
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/components.cpp" "CMakeFiles/kronotri.dir/src/analysis/components.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/analysis/components.cpp.o.d"
  "/root/repo/src/analysis/degree.cpp" "CMakeFiles/kronotri.dir/src/analysis/degree.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/analysis/degree.cpp.o.d"
  "/root/repo/src/analysis/egonet.cpp" "CMakeFiles/kronotri.dir/src/analysis/egonet.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/analysis/egonet.cpp.o.d"
  "/root/repo/src/api/pipeline.cpp" "CMakeFiles/kronotri.dir/src/api/pipeline.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/api/pipeline.cpp.o.d"
  "/root/repo/src/api/registry.cpp" "CMakeFiles/kronotri.dir/src/api/registry.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/api/registry.cpp.o.d"
  "/root/repo/src/api/sink.cpp" "CMakeFiles/kronotri.dir/src/api/sink.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/api/sink.cpp.o.d"
  "/root/repo/src/api/spec.cpp" "CMakeFiles/kronotri.dir/src/api/spec.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/api/spec.cpp.o.d"
  "/root/repo/src/cli/commands.cpp" "CMakeFiles/kronotri.dir/src/cli/commands.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/cli/commands.cpp.o.d"
  "/root/repo/src/core/coo.cpp" "CMakeFiles/kronotri.dir/src/core/coo.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/core/coo.cpp.o.d"
  "/root/repo/src/core/csr.cpp" "CMakeFiles/kronotri.dir/src/core/csr.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/core/csr.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "CMakeFiles/kronotri.dir/src/core/graph.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/core/graph.cpp.o.d"
  "/root/repo/src/core/io.cpp" "CMakeFiles/kronotri.dir/src/core/io.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/core/io.cpp.o.d"
  "/root/repo/src/core/ops.cpp" "CMakeFiles/kronotri.dir/src/core/ops.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/core/ops.cpp.o.d"
  "/root/repo/src/gen/classic.cpp" "CMakeFiles/kronotri.dir/src/gen/classic.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/gen/classic.cpp.o.d"
  "/root/repo/src/gen/one_triangle_pa.cpp" "CMakeFiles/kronotri.dir/src/gen/one_triangle_pa.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/gen/one_triangle_pa.cpp.o.d"
  "/root/repo/src/gen/prune.cpp" "CMakeFiles/kronotri.dir/src/gen/prune.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/gen/prune.cpp.o.d"
  "/root/repo/src/gen/random.cpp" "CMakeFiles/kronotri.dir/src/gen/random.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/gen/random.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "CMakeFiles/kronotri.dir/src/gen/rmat.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/gen/rmat.cpp.o.d"
  "/root/repo/src/kron/census_oracle.cpp" "CMakeFiles/kronotri.dir/src/kron/census_oracle.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/census_oracle.cpp.o.d"
  "/root/repo/src/kron/directed.cpp" "CMakeFiles/kronotri.dir/src/kron/directed.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/directed.cpp.o.d"
  "/root/repo/src/kron/formulas.cpp" "CMakeFiles/kronotri.dir/src/kron/formulas.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/formulas.cpp.o.d"
  "/root/repo/src/kron/labeled.cpp" "CMakeFiles/kronotri.dir/src/kron/labeled.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/labeled.cpp.o.d"
  "/root/repo/src/kron/multi.cpp" "CMakeFiles/kronotri.dir/src/kron/multi.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/multi.cpp.o.d"
  "/root/repo/src/kron/oracle.cpp" "CMakeFiles/kronotri.dir/src/kron/oracle.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/oracle.cpp.o.d"
  "/root/repo/src/kron/product.cpp" "CMakeFiles/kronotri.dir/src/kron/product.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/product.cpp.o.d"
  "/root/repo/src/kron/stream.cpp" "CMakeFiles/kronotri.dir/src/kron/stream.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/stream.cpp.o.d"
  "/root/repo/src/kron/view.cpp" "CMakeFiles/kronotri.dir/src/kron/view.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/kron/view.cpp.o.d"
  "/root/repo/src/triangle/bruteforce.cpp" "CMakeFiles/kronotri.dir/src/triangle/bruteforce.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/triangle/bruteforce.cpp.o.d"
  "/root/repo/src/triangle/clustering.cpp" "CMakeFiles/kronotri.dir/src/triangle/clustering.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/triangle/clustering.cpp.o.d"
  "/root/repo/src/triangle/count.cpp" "CMakeFiles/kronotri.dir/src/triangle/count.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/triangle/count.cpp.o.d"
  "/root/repo/src/triangle/directed.cpp" "CMakeFiles/kronotri.dir/src/triangle/directed.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/triangle/directed.cpp.o.d"
  "/root/repo/src/triangle/forward.cpp" "CMakeFiles/kronotri.dir/src/triangle/forward.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/triangle/forward.cpp.o.d"
  "/root/repo/src/triangle/labeled.cpp" "CMakeFiles/kronotri.dir/src/triangle/labeled.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/triangle/labeled.cpp.o.d"
  "/root/repo/src/triangle/support.cpp" "CMakeFiles/kronotri.dir/src/triangle/support.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/triangle/support.cpp.o.d"
  "/root/repo/src/truss/decompose.cpp" "CMakeFiles/kronotri.dir/src/truss/decompose.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/truss/decompose.cpp.o.d"
  "/root/repo/src/truss/kron_truss.cpp" "CMakeFiles/kronotri.dir/src/truss/kron_truss.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/truss/kron_truss.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/kronotri.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/kronotri.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/kronotri.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
