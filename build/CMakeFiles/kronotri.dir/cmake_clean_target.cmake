file(REMOVE_RECURSE
  "libkronotri.a"
)
