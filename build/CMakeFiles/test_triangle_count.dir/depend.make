# Empty dependencies file for test_triangle_count.
# This may be replaced when dependencies are built.
