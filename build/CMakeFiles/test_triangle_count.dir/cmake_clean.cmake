file(REMOVE_RECURSE
  "CMakeFiles/test_triangle_count.dir/tests/test_triangle_count.cpp.o"
  "CMakeFiles/test_triangle_count.dir/tests/test_triangle_count.cpp.o.d"
  "test_triangle_count"
  "test_triangle_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triangle_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
