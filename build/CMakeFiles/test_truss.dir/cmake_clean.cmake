file(REMOVE_RECURSE
  "CMakeFiles/test_truss.dir/tests/test_truss.cpp.o"
  "CMakeFiles/test_truss.dir/tests/test_truss.cpp.o.d"
  "test_truss"
  "test_truss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
