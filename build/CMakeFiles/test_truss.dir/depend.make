# Empty dependencies file for test_truss.
# This may be replaced when dependencies are built.
