# Empty dependencies file for example_generate_edges.
# This may be replaced when dependencies are built.
