file(REMOVE_RECURSE
  "CMakeFiles/example_generate_edges.dir/examples/generate_edges.cpp.o"
  "CMakeFiles/example_generate_edges.dir/examples/generate_edges.cpp.o.d"
  "examples/generate_edges"
  "examples/generate_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_generate_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
