# Empty dependencies file for example_validate_implementation.
# This may be replaced when dependencies are built.
