file(REMOVE_RECURSE
  "CMakeFiles/example_validate_implementation.dir/examples/validate_implementation.cpp.o"
  "CMakeFiles/example_validate_implementation.dir/examples/validate_implementation.cpp.o.d"
  "examples/validate_implementation"
  "examples/validate_implementation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_validate_implementation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
