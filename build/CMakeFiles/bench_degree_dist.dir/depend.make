# Empty dependencies file for bench_degree_dist.
# This may be replaced when dependencies are built.
