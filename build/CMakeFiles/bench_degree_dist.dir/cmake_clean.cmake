file(REMOVE_RECURSE
  "CMakeFiles/bench_degree_dist.dir/bench/bench_degree_dist.cpp.o"
  "CMakeFiles/bench_degree_dist.dir/bench/bench_degree_dist.cpp.o.d"
  "bench/bench_degree_dist"
  "bench/bench_degree_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degree_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
