# Empty dependencies file for test_degree.
# This may be replaced when dependencies are built.
