file(REMOVE_RECURSE
  "CMakeFiles/test_degree.dir/tests/test_degree.cpp.o"
  "CMakeFiles/test_degree.dir/tests/test_degree.cpp.o.d"
  "test_degree"
  "test_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
