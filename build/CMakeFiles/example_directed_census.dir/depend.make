# Empty dependencies file for example_directed_census.
# This may be replaced when dependencies are built.
