file(REMOVE_RECURSE
  "CMakeFiles/example_directed_census.dir/examples/directed_census.cpp.o"
  "CMakeFiles/example_directed_census.dir/examples/directed_census.cpp.o.d"
  "examples/directed_census"
  "examples/directed_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_directed_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
