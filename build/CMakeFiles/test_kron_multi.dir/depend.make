# Empty dependencies file for test_kron_multi.
# This may be replaced when dependencies are built.
