file(REMOVE_RECURSE
  "CMakeFiles/test_kron_multi.dir/tests/test_kron_multi.cpp.o"
  "CMakeFiles/test_kron_multi.dir/tests/test_kron_multi.cpp.o.d"
  "test_kron_multi"
  "test_kron_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
