file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_extras.dir/tests/test_oracle_extras.cpp.o"
  "CMakeFiles/test_oracle_extras.dir/tests/test_oracle_extras.cpp.o.d"
  "test_oracle_extras"
  "test_oracle_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
