# Empty dependencies file for test_oracle_extras.
# This may be replaced when dependencies are built.
