file(REMOVE_RECURSE
  "CMakeFiles/bench_ex2_truss.dir/bench/bench_ex2_truss.cpp.o"
  "CMakeFiles/bench_ex2_truss.dir/bench/bench_ex2_truss.cpp.o.d"
  "bench/bench_ex2_truss"
  "bench/bench_ex2_truss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex2_truss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
