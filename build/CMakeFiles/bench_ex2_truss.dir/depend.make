# Empty dependencies file for bench_ex2_truss.
# This may be replaced when dependencies are built.
