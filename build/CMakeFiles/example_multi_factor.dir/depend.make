# Empty dependencies file for example_multi_factor.
# This may be replaced when dependencies are built.
