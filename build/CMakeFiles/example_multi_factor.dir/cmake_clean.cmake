file(REMOVE_RECURSE
  "CMakeFiles/example_multi_factor.dir/examples/multi_factor.cpp.o"
  "CMakeFiles/example_multi_factor.dir/examples/multi_factor.cpp.o.d"
  "examples/multi_factor"
  "examples/multi_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
