file(REMOVE_RECURSE
  "CMakeFiles/bench_generation.dir/bench/bench_generation.cpp.o"
  "CMakeFiles/bench_generation.dir/bench/bench_generation.cpp.o.d"
  "bench/bench_generation"
  "bench/bench_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
