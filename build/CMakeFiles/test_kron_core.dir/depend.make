# Empty dependencies file for test_kron_core.
# This may be replaced when dependencies are built.
