file(REMOVE_RECURSE
  "CMakeFiles/test_kron_core.dir/tests/test_kron_core.cpp.o"
  "CMakeFiles/test_kron_core.dir/tests/test_kron_core.cpp.o.d"
  "test_kron_core"
  "test_kron_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
