# Empty dependencies file for test_kron_directed.
# This may be replaced when dependencies are built.
