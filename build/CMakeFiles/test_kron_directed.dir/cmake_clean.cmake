file(REMOVE_RECURSE
  "CMakeFiles/test_kron_directed.dir/tests/test_kron_directed.cpp.o"
  "CMakeFiles/test_kron_directed.dir/tests/test_kron_directed.cpp.o.d"
  "test_kron_directed"
  "test_kron_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
