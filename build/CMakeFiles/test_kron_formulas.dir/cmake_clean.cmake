file(REMOVE_RECURSE
  "CMakeFiles/test_kron_formulas.dir/tests/test_kron_formulas.cpp.o"
  "CMakeFiles/test_kron_formulas.dir/tests/test_kron_formulas.cpp.o.d"
  "test_kron_formulas"
  "test_kron_formulas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
