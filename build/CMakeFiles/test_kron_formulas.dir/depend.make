# Empty dependencies file for test_kron_formulas.
# This may be replaced when dependencies are built.
