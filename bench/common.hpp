// Shared benchmark-harness glue: every bench binary prints its paper
// artifact (table/figure) in main() and then runs its google-benchmark
// timing suite, so `for b in build/bench/*; do $b; done` reads like the
// paper's evaluation section with microbenchmarks attached.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace kt_bench {

inline void banner(const std::string& id, const std::string& what) {
  std::cout << "\n==========================================================\n"
            << id << " — " << what
            << "\n==========================================================\n";
}

/// Standard main body: print the artifact, then run registered benchmarks.
inline int run(int argc, char** argv, void (*print_artifact)()) {
  print_artifact();
  std::cout << "\n-- microbenchmarks "
               "--------------------------------------------\n";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace kt_bench

#define KT_BENCH_MAIN(print_artifact)                      \
  int main(int argc, char** argv) {                        \
    return kt_bench::run(argc, argv, (print_artifact));    \
  }
