// Ablation bench (DESIGN.md §5): the design choices behind the analytics —
// forward (degree-ordered intersection) kernel vs masked-SpGEMM kernel for
// Δ, wedge-check work vs theoretical bounds, and SpGEMM accumulator cost.
#include <cmath>

#include "common.hpp"
#include "core/ops.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("Ablation (DESIGN.md §5)",
                   "triangle kernel and work-counter comparison");
  util::Table t({"factor n", "edges", "triangles", "forward (s)",
                 "masked SpGEMM (s)", "wedge checks", "|E|^1.5"});
  for (const vid n : {5000u, 20000u, 80000u}) {
    const Graph g = gen::holme_kim(n, 3, 0.6, 89);

    util::WallTimer fwd_timer;
    const auto st = triangle::analyze(g);
    const double fwd_s = fwd_timer.seconds();

    util::WallTimer masked_timer;
    const auto delta = triangle::edge_support_masked(g);
    const double masked_s = masked_timer.seconds();

    const bool agree = delta == st.per_edge;
    const double bound = std::pow(static_cast<double>(g.num_undirected_edges()),
                                  1.5);
    t.row({std::to_string(n), util::commas(g.num_undirected_edges()),
           util::commas(st.total), std::to_string(fwd_s),
           agree ? std::to_string(masked_s) : "DISAGREES",
           util::commas(st.wedge_checks), util::human(bound)});
  }
  t.print(std::cout);
  std::cout << "\nwedge checks sit far below the O(|E|^{3/2}) worst case on "
               "scale-free inputs — the effect the paper leans on when it "
               "reports 7.7M checks for a graph whose product has 10^12 "
               "edges.\n";
}

void bm_forward_kernel(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    const auto st = triangle::analyze(g);
    benchmark::DoNotOptimize(st.total);
  }
}
BENCHMARK(bm_forward_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_masked_spgemm_kernel(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    const auto delta = triangle::edge_support_masked(g);
    benchmark::DoNotOptimize(delta.nnz());
  }
}
BENCHMARK(bm_masked_spgemm_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_count_only_kernel(benchmark::State& state) {
  // Cheaper than analyze(): no per-edge scatter.
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(triangle::count_total(g));
  }
}
BENCHMARK(bm_count_only_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_spgemm_dense_spa(benchmark::State& state) {
  const Graph g = gen::erdos_renyi(static_cast<vid>(state.range(0)), 0.01, 101);
  for (auto _ : state) {
    const auto c = ops::spgemm(g.matrix(), g.matrix());
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(bm_spgemm_dense_spa)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void bm_diag_cube(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 103);
  const Graph b = g.with_all_self_loops();
  for (auto _ : state) {
    const auto d = triangle::diag_cube(b);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(bm_diag_cube)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void bm_transpose(benchmark::State& state) {
  const Graph g = gen::holme_kim(50000, 3, 0.6, 107);
  for (auto _ : state) {
    const auto t = ops::transpose(g.matrix());
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(bm_transpose)->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
