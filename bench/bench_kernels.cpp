// Ablation bench (DESIGN.md §5): the design choices behind the analytics —
// forward (degree-ordered intersection) kernel vs masked-SpGEMM kernel for
// Δ, wedge-check work vs theoretical bounds, SpGEMM accumulator cost — plus
// two scaling artifacts:
//   * BENCH_triangle.json — triangles/sec of the atomic-free census engine
//     over threads × scale against the seed's atomic+find implementation,
//   * BENCH_kernels.json — the formerly-serial kernels (truss peel,
//     connected components, COO→CSR build, SpGEMM) over threads against
//     their work-equal serial baselines, with per-CPU-second efficiency.
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common.hpp"
#include "core/ops.hpp"
#include "kronotri.hpp"
#include "truss/decompose.hpp"

namespace {

using namespace kronotri;

/// On oversubscribed boxes (CI containers expose 1–2 hardware threads)
/// libgomp's default active spin at barriers bills scheduler wait as CPU
/// time, corrupting the per-CPU-second efficiency signal. Default to
/// passive waiting before the OpenMP runtime initializes; an explicit
/// OMP_WAIT_POLICY in the environment still wins.
[[maybe_unused]] const bool kPassiveWait = [] {
  setenv("OMP_WAIT_POLICY", "passive", /*overwrite=*/0);
  return true;
}();

/// The seed's serial spgemm: one Gustavson SPA, rows appended directly to
/// the output arrays. Kept here, out of the library, purely as the
/// work-equal baseline for the blocked parallel spgemm.
CountCsr spgemm_serial_seed(const BoolCsr& a, const BoolCsr& b) {
  const vid rows = a.rows(), cols = b.cols();
  std::vector<esz> rp(rows + 1, 0);
  std::vector<vid> ci;
  std::vector<count_t> vals;
  std::vector<count_t> spa(cols, 0);
  std::vector<vid> touched;
  for (vid r = 0; r < rows; ++r) {
    touched.clear();
    const auto arc = a.row_cols(r);
    const auto arv = a.row_vals(r);
    for (std::size_t ka = 0; ka < arc.size(); ++ka) {
      const vid mid = arc[ka];
      const auto av = static_cast<count_t>(arv[ka]);
      const auto brc = b.row_cols(mid);
      const auto brv = b.row_vals(mid);
      for (std::size_t kb = 0; kb < brc.size(); ++kb) {
        const vid c = brc[kb];
        if (spa[c] == 0) touched.push_back(c);
        spa[c] += av * static_cast<count_t>(brv[kb]);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const vid c : touched) {
      ci.push_back(c);
      vals.push_back(spa[c]);
      spa[c] = 0;
    }
    rp[r + 1] = ci.size();
  }
  return CountCsr::from_parts(rows, cols, std::move(rp), std::move(ci),
                              std::move(vals));
}

/// The seed's analyze(): 9 `#pragma omp atomic` bumps and 6 binary-search
/// find() calls per triangle. Kept here, out of the library, purely as the
/// baseline the engine's speedup is measured against.
triangle::UndirectedStats analyze_atomic_seed(const Graph& a) {
  const BoolCsr& s = a.matrix();
  const vid n = s.rows();
  const triangle::Oriented o = triangle::orient_by_degree(s);

  triangle::UndirectedStats st;
  st.per_vertex.assign(n, 0);
  std::vector<count_t> edge_vals(s.nnz(), 0);

  auto bump_edge = [&](vid x, vid y) {
    const esz k1 = s.find(x, y), k2 = s.find(y, x);
#pragma omp atomic
    ++edge_vals[k1];
#pragma omp atomic
    ++edge_vals[k2];
  };

  count_t triangles = 0;
  st.wedge_checks =
      triangle::forward_triangles(o, n, [&](vid u, vid v, vid w) {
#pragma omp atomic
        ++st.per_vertex[u];
#pragma omp atomic
        ++st.per_vertex[v];
#pragma omp atomic
        ++st.per_vertex[w];
        bump_edge(u, v);
        bump_edge(u, w);
        bump_edge(v, w);
#pragma omp atomic
        ++triangles;
      });
  st.total = triangles;
  st.per_edge = CountCsr::from_parts(n, n, s.row_ptr(), s.col_idx(),
                                     std::move(edge_vals));
  return st;
}

template <typename Fn>
auto timed_at_threads(int threads, Fn&& fn, double* secs) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
  util::WallTimer timer;
  auto result = fn();
  *secs = timer.seconds();
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return result;
}

void census_scaling_artifact() {
  kt_bench::banner("Census scaling (BENCH_triangle.json)",
                   "atomic-free engine vs seed atomic+find implementation");
  // Kronecker products in the paper's triangle-density regime (Table VI has
  // ~100 triangles per edge): per-triangle cost dominates, which is exactly
  // where the seed's 9 atomics + 6 binary searches per triangle bite. A
  // sparse scale-free factor alone is wedge-check bound and would measure
  // the shared enumeration loop instead of the census.
  struct Scale {
    const char* name;
    Graph graph;
  };
  const Scale scales[] = {
      {"K12 (x) hk(1000,5,0.8)",
       kron::kron_graph(gen::clique(12), gen::holme_kim(1000, 5, 0.8, 89))},
      {"K20 (x) hk(800,5,0.8)",
       kron::kron_graph(gen::clique(20), gen::holme_kim(800, 5, 0.8, 89))},
  };
  const int thread_counts[] = {1, 2, 4};
  util::json::Value scales_json = util::json::Value::array();
  util::Table t({"product", "edges", "triangles", "impl", "threads",
                 "time (s)", "triangles/s"});

  double seed_last_tps = 0, engine_4t_tps = 0;
  bool identical = true;

  for (const auto& [name, g] : scales) {
    triangle::UndirectedStats ref;

    util::json::Value engine_tps_json = util::json::Value::object();
    for (const int threads : thread_counts) {
      double secs = 0;
      const auto st = timed_at_threads(
          threads, [&] { return triangle::analyze(g); }, &secs);
      if (threads == 1) ref = st;
      identical = identical && st.per_vertex == ref.per_vertex &&
                  st.per_edge == ref.per_edge && st.total == ref.total;
      const double tps = static_cast<double>(st.total) / secs;
      if (threads == 4) engine_4t_tps = tps;  // last scale's value survives
      t.row({name, util::commas(g.num_undirected_edges()),
             util::commas(st.total), "engine", std::to_string(threads),
             std::to_string(secs), util::human(tps)});
      engine_tps_json.set(std::to_string(threads), tps);
    }

    double seed_secs = 0;
    const auto seed_st = timed_at_threads(
        4, [&] { return analyze_atomic_seed(g); }, &seed_secs);
    identical = identical && seed_st.per_vertex == ref.per_vertex &&
                seed_st.per_edge == ref.per_edge;
    const double seed_tps = static_cast<double>(seed_st.total) / seed_secs;
    seed_last_tps = seed_tps;
    t.row({name, util::commas(g.num_undirected_edges()),
           util::commas(seed_st.total), "seed atomic", "4",
           std::to_string(seed_secs), util::human(seed_tps)});

    util::json::Value scale = util::json::Value::object();
    scale.set("product", name);
    scale.set("edges", g.num_undirected_edges());
    scale.set("triangles", ref.total);
    scale.set("triangles_per_edge",
              static_cast<double>(ref.total) /
                  static_cast<double>(g.num_undirected_edges()));
    scale.set("engine_tps", std::move(engine_tps_json));
    scale.set("seed_atomic_tps_4t", seed_tps);
    scales_json.push_back(std::move(scale));
  }
  t.print(std::cout);

  const double speedup = engine_4t_tps / seed_last_tps;
  util::json::Value tj = util::json::Value::object();
  tj.set("bench", "triangle_census");
  tj.set("hardware_threads", std::thread::hardware_concurrency());
  tj.set("scales", std::move(scales_json));
  tj.set("speedup_vs_seed_atomic_4t", speedup);
  tj.set("identical_counts_across_thread_counts", identical);
  tj.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream json("BENCH_triangle.json");
  tj.dump(json);
  json << "\n";
  std::cout << "\nwrote BENCH_triangle.json (engine vs seed atomic at 4 "
               "threads: "
            << util::human(speedup, 3) << "x, counts "
            << (identical ? "identical" : "MISMATCH") << ")\n";
}

double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// One kernel's scaling row: serial reference once, the parallel
/// implementation at 1/2/4 threads (wall + process-CPU seconds), and the
/// two portable signals — work-equal 1-thread ratio (serial wall over
/// parallel-at-1-thread wall) and per-CPU-second efficiency at the widest
/// setting (items per CPU second over the serial items per wall second;
/// ≥ 1.0 means no parallelization tax, the PR 2 convention).
struct KernelScaling {
  util::json::Value json;
  double work_equal_1t = 0;
  double cpu_efficiency = 0;
  bool identical = true;
};

template <typename Serial, typename Parallel, typename Equal>
KernelScaling kernel_scaling(util::Table& t, const char* name,
                             const char* units, double items, Serial&& serial,
                             Parallel&& parallel, Equal&& equal) {
  // Best-of-3 on every configuration: the artifact should snapshot the
  // kernels, not the scheduler of a shared CI box.
  constexpr int kReps = 3;
  KernelScaling out;
  double serial_secs = 1e300;
  auto ref = timed_at_threads(1, serial, &serial_secs);
  for (int rep = 1; rep < kReps; ++rep) {
    double secs = 0;
    timed_at_threads(1, serial, &secs);
    serial_secs = std::min(serial_secs, secs);
  }
  const double serial_ips = items / serial_secs;
  t.row({name, "serial (seed)", "1", std::to_string(serial_secs),
         util::human(serial_ips), "-"});

  util::json::Value threads_json = util::json::Value::object();
  double wall_1t = serial_secs, last_cpu_ips = serial_ips;
  for (const int threads : {1, 2, 4}) {
    double wall = 1e300, cpu = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      double rep_wall = 0;
      const double cpu0 = process_cpu_seconds();
      const auto got = timed_at_threads(threads, parallel, &rep_wall);
      const double rep_cpu = process_cpu_seconds() - cpu0;
      out.identical = out.identical && equal(got, ref);
      if (rep_wall < wall) {
        wall = rep_wall;
        cpu = rep_cpu;
      }
    }
    if (threads == 1) wall_1t = wall;
    last_cpu_ips = items / cpu;
    t.row({name, "parallel", std::to_string(threads), std::to_string(wall),
           util::human(items / wall), util::human(items / cpu)});
    util::json::Value at = util::json::Value::object();
    at.set("wall_s", wall);
    at.set("cpu_s", cpu);
    at.set("items_per_s", items / wall);
    threads_json.set(std::to_string(threads), std::move(at));
  }
  out.work_equal_1t = serial_secs / wall_1t;
  out.cpu_efficiency = last_cpu_ips / serial_ips;

  out.json = util::json::Value::object();
  out.json.set("kernel", name);
  out.json.set("units", units);
  out.json.set("items", static_cast<std::uint64_t>(items));
  out.json.set("serial_baseline_s", serial_secs);
  out.json.set("serial_items_per_s", serial_ips);
  out.json.set("parallel", std::move(threads_json));
  out.json.set("work_equal_1t_ratio", out.work_equal_1t);
  out.json.set("cpu_second_efficiency_4t", out.cpu_efficiency);
  out.json.set("identical", out.identical);
  return out;
}

void kernel_scaling_artifact() {
  kt_bench::banner("Kernel scaling (BENCH_kernels.json)",
                   "parallel truss / components / COO→CSR / SpGEMM vs the "
                   "serial seed kernels");
  util::Table t({"kernel", "impl", "threads", "time (s)", "items/s",
                 "items/cpu-s"});
  std::vector<KernelScaling> rows;

  {
    // Triangle-dense Kronecker product: frontiers hold many edges per level,
    // which is where the level-synchronous peel earns its keep.
    const Graph g =
        kron::kron_graph(gen::clique(8), gen::holme_kim(500, 4, 0.7, 89));
    const double m = static_cast<double>(g.num_undirected_edges());
    rows.push_back(kernel_scaling(
        t, "truss_decompose", "edges", m,
        [&] { return truss::decompose_serial(g); },
        [&] { return truss::decompose(g); },
        [](const truss::TrussDecomposition& x,
           const truss::TrussDecomposition& y) {
          return x.truss_number == y.truss_number && x.max_truss == y.max_truss;
        }));
  }
  {
    const Graph g = gen::holme_kim(150000, 3, 0.6, 91);
    const double items = static_cast<double>(g.num_vertices() + g.nnz());
    rows.push_back(kernel_scaling(
        t, "connected_components", "vertices+slots", items,
        [&] { return analysis::connected_components_serial(g); },
        [&] { return analysis::connected_components(g); },
        [](const analysis::Components& x, const analysis::Components& y) {
          return x.count == y.count && x.component == y.component;
        }));
  }
  {
    // Ingest path: every generated graph pays COO→CSR before any statistic.
    const Graph g = gen::holme_kim(120000, 4, 0.6, 93);
    Coo<std::uint8_t> coo(g.num_vertices(), g.num_vertices());
    coo.reserve(g.nnz());
    for (vid u = 0; u < g.num_vertices(); ++u) {
      for (const vid v : g.neighbors(u)) coo.add(u, v, 1);
    }
    const double items = static_cast<double>(coo.size());
    rows.push_back(kernel_scaling(
        t, "coo_to_csr", "triplets", items,
        [&] { return BoolCsr::from_coo_serial(coo, DupPolicy::kKeep); },
        [&] { return BoolCsr::from_coo(coo, DupPolicy::kKeep); },
        [](const BoolCsr& x, const BoolCsr& y) { return x == y; }));
  }
  {
    const Graph g = gen::erdos_renyi(3000, 0.01, 95);
    // Multiply-adds — the actual Gustavson work — rather than output size.
    double flops = 0;
    for (vid r = 0; r < g.num_vertices(); ++r) {
      for (const vid mid : g.neighbors(r)) {
        flops += static_cast<double>(g.out_degree(mid));
      }
    }
    rows.push_back(kernel_scaling(
        t, "spgemm", "multiply-adds", flops,
        [&] { return spgemm_serial_seed(g.matrix(), g.matrix()); },
        [&] { return ops::spgemm(g.matrix(), g.matrix()); },
        [](const CountCsr& x, const CountCsr& y) { return x == y; }));
  }
  t.print(std::cout);

  bool identical = true;
  for (const auto& row : rows) identical = identical && row.identical;
  util::json::Value j = util::json::Value::object();
  j.set("bench", "parallel_kernels");
  j.set("hardware_threads", std::thread::hardware_concurrency());
  util::json::Value kernels = util::json::Value::array();
  for (const auto& row : rows) kernels.push_back(row.json);
  j.set("kernels", std::move(kernels));
  j.set("identical_to_serial", identical);
  j.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream json("BENCH_kernels.json");
  j.dump(json);
  json << "\n";
  std::cout << "\nwrote BENCH_kernels.json (outputs "
            << (identical ? "identical" : "MISMATCH")
            << " to the serial kernels; wall speedup needs >= 2 hardware "
               "threads, per-CPU-second efficiency is the portable signal)\n";
}

void print_artifact() {
  kt_bench::banner("Ablation (DESIGN.md §5)",
                   "triangle kernel and work-counter comparison");
  util::Table t({"factor n", "edges", "triangles", "forward (s)",
                 "masked SpGEMM (s)", "wedge checks", "|E|^1.5"});
  for (const vid n : {5000u, 20000u, 80000u}) {
    const Graph g = gen::holme_kim(n, 3, 0.6, 89);

    util::WallTimer fwd_timer;
    const auto st = triangle::analyze(g);
    const double fwd_s = fwd_timer.seconds();

    // The linear-algebra formulation (support.cpp now runs on the census
    // engine, so the ablation calls the masked SpGEMM kernel directly).
    util::WallTimer masked_timer;
    const auto delta =
        ops::masked_product(g.matrix(), g.matrix(), g.matrix());
    const double masked_s = masked_timer.seconds();

    const bool agree = delta == st.per_edge;
    const double bound = std::pow(static_cast<double>(g.num_undirected_edges()),
                                  1.5);
    t.row({std::to_string(n), util::commas(g.num_undirected_edges()),
           util::commas(st.total), std::to_string(fwd_s),
           agree ? std::to_string(masked_s) : "DISAGREES",
           util::commas(st.wedge_checks), util::human(bound)});
  }
  t.print(std::cout);
  std::cout << "\nwedge checks sit far below the O(|E|^{3/2}) worst case on "
               "scale-free inputs — the effect the paper leans on when it "
               "reports 7.7M checks for a graph whose product has 10^12 "
               "edges.\n";

  census_scaling_artifact();
  kernel_scaling_artifact();
}

void bm_forward_kernel(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    const auto st = triangle::analyze(g);
    benchmark::DoNotOptimize(st.total);
  }
}
BENCHMARK(bm_forward_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_masked_spgemm_kernel(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    const auto delta = triangle::edge_support_masked(g);
    benchmark::DoNotOptimize(delta.nnz());
  }
}
BENCHMARK(bm_masked_spgemm_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_count_only_kernel(benchmark::State& state) {
  // Cheaper than analyze(): no per-edge scatter.
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(triangle::count_total(g));
  }
}
BENCHMARK(bm_count_only_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_spgemm_dense_spa(benchmark::State& state) {
  const Graph g = gen::erdos_renyi(static_cast<vid>(state.range(0)), 0.01, 101);
  for (auto _ : state) {
    const auto c = ops::spgemm(g.matrix(), g.matrix());
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(bm_spgemm_dense_spa)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void bm_diag_cube(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 103);
  const Graph b = g.with_all_self_loops();
  for (auto _ : state) {
    const auto d = triangle::diag_cube(b);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(bm_diag_cube)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void bm_truss_decompose(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 4, 0.7, 109);
  for (auto _ : state) {
    const auto d = truss::decompose(g);
    benchmark::DoNotOptimize(d.max_truss);
  }
}
BENCHMARK(bm_truss_decompose)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_connected_components(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 111);
  for (auto _ : state) {
    const auto c = analysis::connected_components(g);
    benchmark::DoNotOptimize(c.count);
  }
}
BENCHMARK(bm_connected_components)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void bm_coo_to_csr(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 4, 0.6, 113);
  Coo<std::uint8_t> coo(g.num_vertices(), g.num_vertices());
  coo.reserve(g.nnz());
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (const vid v : g.neighbors(u)) coo.add(u, v, 1);
  }
  for (auto _ : state) {
    const auto m = BoolCsr::from_coo(coo, DupPolicy::kKeep);
    benchmark::DoNotOptimize(m.nnz());
  }
}
BENCHMARK(bm_coo_to_csr)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void bm_transpose(benchmark::State& state) {
  const Graph g = gen::holme_kim(50000, 3, 0.6, 107);
  for (auto _ : state) {
    const auto t = ops::transpose(g.matrix());
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(bm_transpose)->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
