// Ablation bench (DESIGN.md §5): the design choices behind the analytics —
// forward (degree-ordered intersection) kernel vs masked-SpGEMM kernel for
// Δ, wedge-check work vs theoretical bounds, SpGEMM accumulator cost — plus
// the census scaling artifact: triangles/sec of the atomic-free engine over
// threads × scale against the seed's atomic+find implementation, written to
// BENCH_triangle.json so the speedup is tracked across PRs.
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common.hpp"
#include "core/ops.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

/// The seed's analyze(): 9 `#pragma omp atomic` bumps and 6 binary-search
/// find() calls per triangle. Kept here, out of the library, purely as the
/// baseline the engine's speedup is measured against.
triangle::UndirectedStats analyze_atomic_seed(const Graph& a) {
  const BoolCsr& s = a.matrix();
  const vid n = s.rows();
  const triangle::Oriented o = triangle::orient_by_degree(s);

  triangle::UndirectedStats st;
  st.per_vertex.assign(n, 0);
  std::vector<count_t> edge_vals(s.nnz(), 0);

  auto bump_edge = [&](vid x, vid y) {
    const esz k1 = s.find(x, y), k2 = s.find(y, x);
#pragma omp atomic
    ++edge_vals[k1];
#pragma omp atomic
    ++edge_vals[k2];
  };

  count_t triangles = 0;
  st.wedge_checks =
      triangle::forward_triangles(o, n, [&](vid u, vid v, vid w) {
#pragma omp atomic
        ++st.per_vertex[u];
#pragma omp atomic
        ++st.per_vertex[v];
#pragma omp atomic
        ++st.per_vertex[w];
        bump_edge(u, v);
        bump_edge(u, w);
        bump_edge(v, w);
#pragma omp atomic
        ++triangles;
      });
  st.total = triangles;
  st.per_edge = CountCsr::from_parts(n, n, s.row_ptr(), s.col_idx(),
                                     std::move(edge_vals));
  return st;
}

template <typename Fn>
auto timed_at_threads(int threads, Fn&& fn, double* secs) {
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
  util::WallTimer timer;
  auto result = fn();
  *secs = timer.seconds();
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
  return result;
}

void census_scaling_artifact() {
  kt_bench::banner("Census scaling (BENCH_triangle.json)",
                   "atomic-free engine vs seed atomic+find implementation");
  // Kronecker products in the paper's triangle-density regime (Table VI has
  // ~100 triangles per edge): per-triangle cost dominates, which is exactly
  // where the seed's 9 atomics + 6 binary searches per triangle bite. A
  // sparse scale-free factor alone is wedge-check bound and would measure
  // the shared enumeration loop instead of the census.
  struct Scale {
    const char* name;
    Graph graph;
  };
  const Scale scales[] = {
      {"K12 (x) hk(1000,5,0.8)",
       kron::kron_graph(gen::clique(12), gen::holme_kim(1000, 5, 0.8, 89))},
      {"K20 (x) hk(800,5,0.8)",
       kron::kron_graph(gen::clique(20), gen::holme_kim(800, 5, 0.8, 89))},
  };
  const int thread_counts[] = {1, 2, 4};
  std::ostringstream scales_json;
  util::Table t({"product", "edges", "triangles", "impl", "threads",
                 "time (s)", "triangles/s"});

  double seed_last_tps = 0, engine_4t_tps = 0;
  bool identical = true;

  bool first_scale = true;
  for (const auto& [name, g] : scales) {
    triangle::UndirectedStats ref;

    std::ostringstream engine_tps_json;
    bool first_t = true;
    for (const int threads : thread_counts) {
      double secs = 0;
      const auto st = timed_at_threads(
          threads, [&] { return triangle::analyze(g); }, &secs);
      if (threads == 1) ref = st;
      identical = identical && st.per_vertex == ref.per_vertex &&
                  st.per_edge == ref.per_edge && st.total == ref.total;
      const double tps = static_cast<double>(st.total) / secs;
      if (threads == 4) engine_4t_tps = tps;  // last scale's value survives
      t.row({name, util::commas(g.num_undirected_edges()),
             util::commas(st.total), "engine", std::to_string(threads),
             std::to_string(secs), util::human(tps)});
      engine_tps_json << (first_t ? "" : ", ") << "\"" << threads
                      << "\": " << tps;
      first_t = false;
    }

    double seed_secs = 0;
    const auto seed_st = timed_at_threads(
        4, [&] { return analyze_atomic_seed(g); }, &seed_secs);
    identical = identical && seed_st.per_vertex == ref.per_vertex &&
                seed_st.per_edge == ref.per_edge;
    const double seed_tps = static_cast<double>(seed_st.total) / seed_secs;
    seed_last_tps = seed_tps;
    t.row({name, util::commas(g.num_undirected_edges()),
           util::commas(seed_st.total), "seed atomic", "4",
           std::to_string(seed_secs), util::human(seed_tps)});

    scales_json << (first_scale ? "" : ",") << "\n    {\"product\": \"" << name
                << "\", \"edges\": " << g.num_undirected_edges()
                << ", \"triangles\": " << ref.total
                << ", \"triangles_per_edge\": "
                << static_cast<double>(ref.total) /
                       static_cast<double>(g.num_undirected_edges())
                << ", \"engine_tps\": {" << engine_tps_json.str()
                << "}, \"seed_atomic_tps_4t\": " << seed_tps << "}";
    first_scale = false;
  }
  t.print(std::cout);

  const double speedup = engine_4t_tps / seed_last_tps;
  std::ofstream json("BENCH_triangle.json");
  json << "{\n"
       << "  \"bench\": \"triangle_census\",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"scales\": [" << scales_json.str() << "\n  ],\n"
       << "  \"speedup_vs_seed_atomic_4t\": " << speedup << ",\n"
       << "  \"identical_counts_across_thread_counts\": "
       << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nwrote BENCH_triangle.json (engine vs seed atomic at 4 "
               "threads: "
            << util::human(speedup, 3) << "x, counts "
            << (identical ? "identical" : "MISMATCH") << ")\n";
}

void print_artifact() {
  kt_bench::banner("Ablation (DESIGN.md §5)",
                   "triangle kernel and work-counter comparison");
  util::Table t({"factor n", "edges", "triangles", "forward (s)",
                 "masked SpGEMM (s)", "wedge checks", "|E|^1.5"});
  for (const vid n : {5000u, 20000u, 80000u}) {
    const Graph g = gen::holme_kim(n, 3, 0.6, 89);

    util::WallTimer fwd_timer;
    const auto st = triangle::analyze(g);
    const double fwd_s = fwd_timer.seconds();

    // The linear-algebra formulation (support.cpp now runs on the census
    // engine, so the ablation calls the masked SpGEMM kernel directly).
    util::WallTimer masked_timer;
    const auto delta =
        ops::masked_product(g.matrix(), g.matrix(), g.matrix());
    const double masked_s = masked_timer.seconds();

    const bool agree = delta == st.per_edge;
    const double bound = std::pow(static_cast<double>(g.num_undirected_edges()),
                                  1.5);
    t.row({std::to_string(n), util::commas(g.num_undirected_edges()),
           util::commas(st.total), std::to_string(fwd_s),
           agree ? std::to_string(masked_s) : "DISAGREES",
           util::commas(st.wedge_checks), util::human(bound)});
  }
  t.print(std::cout);
  std::cout << "\nwedge checks sit far below the O(|E|^{3/2}) worst case on "
               "scale-free inputs — the effect the paper leans on when it "
               "reports 7.7M checks for a graph whose product has 10^12 "
               "edges.\n";

  census_scaling_artifact();
}

void bm_forward_kernel(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    const auto st = triangle::analyze(g);
    benchmark::DoNotOptimize(st.total);
  }
}
BENCHMARK(bm_forward_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_masked_spgemm_kernel(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    const auto delta = triangle::edge_support_masked(g);
    benchmark::DoNotOptimize(delta.nnz());
  }
}
BENCHMARK(bm_masked_spgemm_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_count_only_kernel(benchmark::State& state) {
  // Cheaper than analyze(): no per-edge scatter.
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(triangle::count_total(g));
  }
}
BENCHMARK(bm_count_only_kernel)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void bm_spgemm_dense_spa(benchmark::State& state) {
  const Graph g = gen::erdos_renyi(static_cast<vid>(state.range(0)), 0.01, 101);
  for (auto _ : state) {
    const auto c = ops::spgemm(g.matrix(), g.matrix());
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(bm_spgemm_dense_spa)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void bm_diag_cube(benchmark::State& state) {
  const Graph g = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 103);
  const Graph b = g.with_all_self_loops();
  for (auto _ : state) {
    const auto d = triangle::diag_cube(b);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(bm_diag_cube)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void bm_transpose(benchmark::State& state) {
  const Graph g = gen::holme_kim(50000, 3, 0.6, 107);
  for (auto _ : state) {
    const auto t = ops::transpose(g.matrix());
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(bm_transpose)->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
