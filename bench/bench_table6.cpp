// E1 — the paper's §VI table (its only table): exact vertex/edge/triangle
// counts of A, B = A+I, A⊗A and A⊗B computed from factor statistics, with
// the wall time and wedge-check work counter the paper quotes ("about 10.5
// seconds on a commodity laptop ... 7,734,429 wedge checks").
//
// The factor is our web-NotreDame stand-in (same vertex count, scale-free,
// triangle-rich; see DESIGN.md "Substitutions"). Shape to compare with the
// paper: |E(A⊗A)| = nnz(A)²/2 lands in the trillions, τ(A⊗A) = 6·τ(A)²,
// and the A⊗B column is strictly larger in both edges and triangles.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

constexpr vid kNotreDameVertices = 325729;

Graph make_factor(vid n) { return gen::holme_kim(n, 3, 0.6, 1803); }

void print_artifact() {
  kt_bench::banner("E1 (Table, §VI)",
                   "trillion-edge census from factor statistics");
  util::WallTimer gen_timer;
  const Graph a = make_factor(kNotreDameVertices);
  const Graph b = a.with_all_self_loops();
  std::cout << "factor: Holme-Kim n=" << kNotreDameVertices
            << " (web-NotreDame stand-in), generated in "
            << gen_timer.seconds() << " s\n\n";

  util::WallTimer census;
  const auto stats_a = triangle::analyze(a);
  const count_t tau_aa = kron::total_triangles(a, a);
  const count_t tau_ab = kron::total_triangles(a, b);
  const double census_s = census.seconds();

  const kron::KronGraphView caa(a, a), cab(a, b);
  util::Table t({"Matrix", "Vertices", "Edges", "Triangles"});
  auto h = [](count_t v) { return util::human(static_cast<double>(v)); };
  t.row({"A", h(a.num_vertices()), h(a.num_undirected_edges()),
         h(stats_a.total)});
  t.row({"B = A+I", h(b.num_vertices()), h(b.num_undirected_edges()),
         h(stats_a.total)});
  t.row({"A (x) A", h(caa.num_vertices()), h(caa.num_undirected_edges()),
         h(tau_aa)});
  t.row({"A (x) B", h(cab.num_vertices()), h(cab.num_undirected_edges()),
         h(tau_ab)});
  t.print(std::cout);
  std::cout << "\nboth product censuses: " << census_s << " s, "
            << util::commas(stats_a.wedge_checks)
            << " wedge checks on the factor\n"
            << "paper (web-NotreDame): 10.5 s, 7,734,429 wedge checks; "
               "106.1B vertices, 2.38T/2.73T edges, 111.4T/141.0T triangles\n"
            << "identities held: tau(A (x) A) == 6 tau(A)^2: "
            << (tau_aa == 6 * stats_a.total * stats_a.total ? "yes" : "NO")
            << ", |E| multiplicative: "
            << (caa.nnz() == a.nnz() * a.nnz() ? "yes" : "NO") << "\n";
}

void bm_factor_census(benchmark::State& state) {
  const Graph a = make_factor(static_cast<vid>(state.range(0)));
  for (auto _ : state) {
    const auto stats = triangle::analyze(a);
    benchmark::DoNotOptimize(stats.total);
  }
  state.counters["edges"] = static_cast<double>(a.num_undirected_edges());
}
BENCHMARK(bm_factor_census)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void bm_product_total_triangles(benchmark::State& state) {
  const Graph a = make_factor(static_cast<vid>(state.range(0)));
  const Graph b = a.with_all_self_loops();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kron::total_triangles(a, b));
  }
  state.counters["product_edges"] = static_cast<double>(
      static_cast<double>(a.nnz()) * static_cast<double>(b.nnz()) / 2);
}
BENCHMARK(bm_product_total_triangles)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void bm_oracle_construction(benchmark::State& state) {
  const Graph a = make_factor(static_cast<vid>(state.range(0)));
  const Graph b = a.with_all_self_loops();
  for (auto _ : state) {
    const kron::TriangleOracle oracle(a, b);
    benchmark::DoNotOptimize(oracle.total_triangles());
  }
}
BENCHMARK(bm_oracle_construction)->Arg(10000)->Unit(benchmark::kMillisecond);

void bm_oracle_vertex_query(benchmark::State& state) {
  const Graph a = make_factor(10000);
  const Graph b = a.with_all_self_loops();
  const kron::TriangleOracle oracle(a, b);
  vid p = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.vertex_triangles(p));
    p = (p * 2654435761u + 1) % oracle.num_vertices();
  }
}
BENCHMARK(bm_oracle_vertex_query);

}  // namespace

KT_BENCH_MAIN(print_artifact)
