// Service-mode latency benchmark (BENCH_service.json): the src/service/
// daemon under concurrent client load, cold vs cached.
//
// Artifact contract (consumed by CI):
//   * for 1, 8 and 64 concurrent clients, plans/sec plus p50/p99 round-trip
//     latency is recorded twice — "cold" (every plan unique, so every
//     request executes) and "cached" (one plan repeated, so all but the
//     warmup replay from the deterministic result cache);
//   * the run FAILS (non-zero exit) if any request errors or any worker
//     dies — the 64-client row doubles as the load-survival check the
//     acceptance criteria name;
//   * the cached rows also assert the byte-identical replay guarantee on
//     every hit.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/pipeline.hpp"
#include "api/plan.hpp"
#include "common.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/json.hpp"
#include "util/runmeta.hpp"
#include "util/table.hpp"

namespace {

using namespace kronotri;
using Clock = std::chrono::steady_clock;

std::string bench_socket() {
  return "/tmp/kronotri_bench_" + std::to_string(::getpid()) + ".sock";
}

std::string plan_text(int seed) {
  return "kron:(hk:n=200,m=3,p=0.6,seed=" + std::to_string(seed) +
         ")x(clique:n=3,loops=1) census degree";
}

struct LoadResult {
  std::string mode;
  int clients = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  std::size_t replay_mismatches = 0;
  double wall_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  double plans_per_sec = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// `clients` threads, each its own connection, each `per_client` submits.
/// Cold mode gives every request a unique seed (always executes); cached
/// mode repeats ONE pre-warmed plan and checks each replay byte-for-byte.
LoadResult run_load(const std::string& socket, const std::string& mode,
                    int clients, int per_client, int seed_base,
                    const std::string& cached_report_bytes) {
  const bool cached = !cached_report_bytes.empty();
  LoadResult r;
  r.mode = mode;
  r.clients = clients;
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::size_t> errors(clients, 0);
  std::vector<std::size_t> mismatches(clients, 0);

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      try {
        service::Client c;
        c.connect(socket);
        for (int i = 0; i < per_client; ++i) {
          const int seed = seed_base + t * per_client + i;
          const std::string plan =
              cached ? plan_text(seed_base) : plan_text(seed);
          const Clock::time_point s = Clock::now();
          const util::json::Value response = c.submit_text(plan);
          latencies[t].push_back(
              std::chrono::duration<double>(Clock::now() - s).count());
          if (!response.get_bool("ok", false)) {
            ++errors[t];
          } else if (cached) {
            if (response.get_string("cache", "") != "hit" ||
                response.find("report")->dump_string(0) !=
                    cached_report_bytes) {
              ++mismatches[t];
            }
          }
        }
      } catch (const std::exception&) {
        ++errors[t];
      }
    });
  }
  for (std::thread& th : threads) th.join();
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (const std::size_t e : errors) r.errors += e;
  for (const std::size_t m : mismatches) r.replay_mismatches += m;
  r.requests = all.size();
  r.p50_s = percentile(all, 0.50);
  r.p99_s = percentile(all, 0.99);
  r.plans_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.requests) / r.wall_s : 0;
  return r;
}

util::json::Value load_json(const LoadResult& r) {
  util::json::Value j = util::json::Value::object();
  j.set("mode", r.mode);
  j.set("clients", r.clients);
  j.set("requests", static_cast<std::uint64_t>(r.requests));
  j.set("errors", static_cast<std::uint64_t>(r.errors));
  j.set("replay_mismatches", static_cast<std::uint64_t>(r.replay_mismatches));
  j.set("wall_s", r.wall_s);
  j.set("p50_s", r.p50_s);
  j.set("p99_s", r.p99_s);
  j.set("plans_per_sec", r.plans_per_sec);
  return j;
}

bool g_all_ok = true;

void print_artifact() {
  kt_bench::banner("Service mode (BENCH_service.json)",
                   "daemon latency under concurrent clients, cold vs cached");

  service::ServerOptions opt;
  opt.socket_path = bench_socket();
  opt.workers = std::max(2u, std::thread::hardware_concurrency() / 2);
  opt.queue_depth = 256;
  service::Server server(opt);
  server.start();

  // Warm the cached plan once and capture its report bytes — the replay
  // reference every cached-mode request is checked against.
  constexpr int kCachedSeed = 90000;
  std::string cached_report;
  {
    service::Client c;
    c.connect(opt.socket_path);
    const util::json::Value warm = c.submit_text(plan_text(kCachedSeed));
    g_all_ok = g_all_ok && warm.get_bool("ok", false);
    cached_report = warm.find("report")->dump_string(0);
  }

  std::vector<LoadResult> results;
  int seed_base = 1000;
  for (const int clients : {1, 8, 64}) {
    const int per_client = clients >= 64 ? 2 : 8;
    results.push_back(run_load(opt.socket_path, "cold", clients, per_client,
                               seed_base, ""));
    seed_base += clients * per_client + 16;
    results.push_back(run_load(opt.socket_path, "cached", clients,
                               per_client, kCachedSeed, cached_report));
  }

  const util::json::Value stats = server.stats_json();
  const std::uint64_t failed = stats.get_uint("jobs_failed", 0);

  util::Table t({"mode", "clients", "requests", "plans/s", "p50 ms",
                 "p99 ms", "verdict"});
  for (const LoadResult& r : results) {
    const bool ok = r.errors == 0 && r.replay_mismatches == 0;
    g_all_ok = g_all_ok && ok;
    t.row({r.mode, std::to_string(r.clients), std::to_string(r.requests),
           std::to_string(r.plans_per_sec), std::to_string(r.p50_s * 1e3),
           std::to_string(r.p99_s * 1e3), ok ? "PASS" : "FAIL"});
  }
  t.print(std::cout);
  g_all_ok = g_all_ok && failed == 0;

  util::json::Value j = util::json::Value::object();
  util::json::Value loads = util::json::Value::array();
  for (const LoadResult& r : results) loads.push_back(load_json(r));
  j.set("loads", std::move(loads));
  j.set("workers", opt.workers);
  j.set("jobs_failed", failed);
  j.set("server_stats", stats);
  j.set("all_pass", g_all_ok);
  j.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream out("BENCH_service.json");
  j.dump(out);
  out << "\n";
  std::cout << "\nwrote BENCH_service.json ("
            << (g_all_ok ? "all loads PASS" : "LOAD FAILURE")
            << "; 64-client survival: jobs_failed=" << failed << ")\n";

  server.stop();
}

// -- microbenchmarks ---------------------------------------------------------

void bm_cache_key(benchmark::State& state) {
  const api::RunPlan plan = api::RunPlan::parse(plan_text(1));
  for (auto _ : state) {
    const std::string key = service::cache_key(plan);
    benchmark::DoNotOptimize(util::json::hash64(key));
  }
}
BENCHMARK(bm_cache_key);

void bm_canonical_dump(benchmark::State& state) {
  const util::json::Value report =
      api::RunPlan::parse(plan_text(1)).to_json();
  for (auto _ : state) {
    benchmark::DoNotOptimize(report.dump_canonical_string());
  }
}
BENCHMARK(bm_canonical_dump);

void bm_cached_roundtrip(benchmark::State& state) {
  // One server + one connection, reused across iterations: measures the
  // full protocol round trip of a cache hit (parse, key, probe, splice).
  service::ServerOptions opt;
  opt.socket_path = bench_socket() + ".rt";
  service::Server server(opt);
  server.start();
  service::Client c;
  c.connect(opt.socket_path);
  const std::string plan = plan_text(5);
  benchmark::DoNotOptimize(c.submit_text(plan));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.submit_text(plan));
  }
  c.close();
  server.stop();
}
BENCHMARK(bm_cached_roundtrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = kt_bench::run(argc, argv, print_artifact);
  if (rc != 0) return rc;
  return g_all_ok ? 0 : 1;
}
