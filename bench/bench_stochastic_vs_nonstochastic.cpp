// E9 — Rem. 1: stochastic Kronecker / R-MAT graphs (the Graph500 generator
// family [1],[4]) have relatively few triangles AT TYPICAL VERTICES because
// edges are sampled (quasi-)independently: the combined probability of a
// vertex triplet closing is tiny outside the dense hub core ([7],[13]).
// Non-stochastic Kronecker products of triangle-rich factors keep triangles
// everywhere, and local counts are tunable (add/delete triangles and self
// loops in the factors).
//
// The table compares, at matched vertex/edge scale: total triangles,
// the fraction of vertices and edges in NO triangle, and the average local
// clustering coefficient. R-MAT's triangles concentrate in its hub core
// (raw τ can even be larger) while most of its vertices see none — the
// non-stochastic product keeps every metric real-world-shaped.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

struct Metrics {
  count_t n, e, tau;
  double tri_free_v, tri_free_e, avg_cc;
};

Metrics measure(const Graph& g) {
  Metrics m;
  m.n = g.num_vertices();
  m.e = g.num_undirected_edges();
  const auto t = triangle::participation_vertices(g);
  std::size_t zv = 0;
  count_t sum = 0;
  for (const count_t v : t) {
    zv += v == 0;
    sum += v;
  }
  m.tau = sum / 3;
  const auto d = triangle::edge_support_masked(g);
  std::size_t ze = 0;
  for (const count_t v : d.values()) ze += v == 0;
  m.tri_free_v = static_cast<double>(zv) / static_cast<double>(t.size());
  m.tri_free_e = d.values().empty()
                     ? 0.0
                     : static_cast<double>(ze) /
                           static_cast<double>(d.values().size());
  m.avg_cc = triangle::average_clustering(g);
  return m;
}

void print_artifact() {
  kt_bench::banner("E9 (Rem. 1)",
                   "stochastic (R-MAT) vs non-stochastic Kronecker triangles");
  // Sparse, real-world-shaped factor (avg clustering ≈ 0.5, like web
  // graphs); product and R-MAT matched on vertices and edges.
  const auto& registry = api::GeneratorRegistry::builtin();
  const Graph f = registry.build("hk:n=362,m=2,p=0.9,seed=53");
  const Graph c = kron::kron_graph(f, f);
  const Graph r = registry.build(
      "rmat:scale=17,ef=" +
      std::to_string(
          std::max<esz>(1, c.num_undirected_edges() / (vid{1} << 17))) +
      ",seed=54");

  util::Table t({"graph", "vertices", "edges", "triangles",
                 "tri-free vertices", "tri-free edges", "avg local cc"});
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * v);
    return std::string(buf);
  };
  auto fmc = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return std::string(buf);
  };
  auto h = [](count_t v) { return util::human(static_cast<double>(v)); };
  auto row = [&](const char* name, const Metrics& m) {
    t.row({name, h(m.n), h(m.e), h(m.tau), fmt(m.tri_free_v),
           fmt(m.tri_free_e), fmc(m.avg_cc)});
  };
  row("factor F (Holme-Kim)", measure(f));
  row("F (x) F (non-stochastic)", measure(c));
  row("R-MAT (stochastic)", measure(r));
  t.print(std::cout);

  std::cout
      << "\nRem. 1 reproduced: most R-MAT vertices participate in no "
         "triangle (edge independence makes closing a typical triplet "
         "vanishingly unlikely; its triangles concentrate in the hub "
         "core), while the non-stochastic product keeps triangle "
         "participation broad and TUNABLE — e.g. adding self loops to one "
         "factor multiplies every local count:\n";
  const count_t plain = kron::total_triangles(f, f);
  const count_t boosted = kron::total_triangles(f, f.with_all_self_loops());
  std::cout << "  tau(F (x) F) = " << util::commas(plain)
            << "  ->  tau(F (x) (F+I)) = " << util::commas(boosted) << " ("
            << util::human(static_cast<double>(boosted) /
                           static_cast<double>(plain))
            << "x, Rem. 3 self-loop boosting)\n";
}

void bm_rmat_generation(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const Graph r =
        gen::rmat(static_cast<unsigned>(state.range(0)), 8, {}, seed++);
    benchmark::DoNotOptimize(r.nnz());
  }
}
BENCHMARK(bm_rmat_generation)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void bm_rmat_triangle_count(benchmark::State& state) {
  const Graph r = gen::rmat(static_cast<unsigned>(state.range(0)), 8, {}, 55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(triangle::count_total(r));
  }
}
BENCHMARK(bm_rmat_triangle_count)
    ->Arg(12)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

void bm_nonstochastic_triangle_count(benchmark::State& state) {
  // Equivalent-scale count via the Kronecker formula: the factor is counted
  // inside the loop to keep the comparison honest.
  const Graph f = gen::holme_kim(static_cast<vid>(state.range(0)), 4, 0.7, 56);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kron::total_triangles(f, f));
  }
}
BENCHMARK(bm_nonstochastic_triangle_count)
    ->Arg(128)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
