// Extension bench (not a paper artifact): multi-factor Kronecker chains
// A₁ ⊗ … ⊗ A_k — the construction the paper's companion work [3] uses for
// extreme-scale generation. Shows how product size explodes with k while
// exact census cost stays factor-sized, and verifies a materialized
// three-factor chain.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("Extension ([3]-style chains)",
                   "k-factor Kronecker products with exact census");
  util::Table t({"k", "vertices", "edges", "triangles (exact)",
                 "census time (s)"});
  for (std::size_t k = 1; k <= 5; ++k) {
    std::vector<Graph> factors;
    for (std::size_t i = 0; i < k; ++i) {
      factors.push_back(api::GeneratorRegistry::builtin().build(
          "hk:n=200,m=3,p=0.6,seed=" + std::to_string(111 + i)));
    }
    util::WallTimer timer;
    const kron::KronChain chain(factors);
    const count_t tau = chain.total_triangles();
    const double secs = timer.seconds();
    t.row({std::to_string(k),
           util::human(static_cast<double>(chain.num_vertices())),
           util::human(static_cast<double>(chain.num_undirected_edges())),
           util::commas(tau), std::to_string(secs)});
  }
  t.print(std::cout);

  // Verification against a materialized 3-chain.
  std::vector<Graph> small;
  for (std::size_t i = 0; i < 3; ++i) {
    small.push_back(gen::holme_kim(9, 2, 0.6, 222 + i));
  }
  const kron::KronChain sc(small);
  const Graph m = sc.materialize();
  std::cout << "\n3-factor check vs materialized " << m.num_vertices()
            << "-vertex product: "
            << (sc.total_triangles() == triangle::count_total(m)
                    ? "exact match"
                    : "MISMATCH")
            << "\n";
}

void bm_chain_census(benchmark::State& state) {
  std::vector<Graph> factors;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    factors.push_back(
        gen::holme_kim(500, 3, 0.6, 333 + static_cast<std::uint64_t>(i)));
  }
  const kron::KronChain chain(factors);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.total_triangles());
  }
}
BENCHMARK(bm_chain_census)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_chain_vertex_query(benchmark::State& state) {
  std::vector<Graph> factors;
  for (int i = 0; i < 4; ++i) {
    factors.push_back(
        gen::holme_kim(500, 3, 0.6, 444 + static_cast<std::uint64_t>(i)));
  }
  const kron::KronChain chain(factors);
  (void)chain.vertex_triangles(0);  // force stat precompute
  vid p = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.vertex_triangles(p));
    p = (p * 2654435761u + 3) % chain.num_vertices();
  }
}
BENCHMARK(bm_chain_vertex_query);

}  // namespace

KT_BENCH_MAIN(print_artifact)
