// E3 — Ex. 1(a)–(c): the clique/looped-clique closed forms that sanity-check
// every §III formula, swept across sizes, plus formula-evaluation timings.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("E3 (Ex. 1)", "clique-product closed forms");
  util::Table t({"case", "nA", "nB", "degree", "t per vertex", "Δ per edge",
                 "formula==closed form"});
  for (const auto& [na, nb] : {std::pair<vid, vid>{3, 4},
                               {4, 5},
                               {6, 7},
                               {8, 9}}) {
    const vid n = na * nb;
    // Ex 1(a): K ⊗ K.
    {
      const Graph a = gen::clique(na), b = gen::clique(nb);
      const count_t deg = n + 1 - na - nb;
      const count_t tv = deg * (n + 4 - 2 * na - 2 * nb) / 2;
      const count_t te = n + 4 - 2 * na - 2 * nb;
      const auto tvec = kron::vertex_triangles(a, b);
      const auto dmat = kron::edge_triangles(a, b);
      bool ok = true;
      for (vid p = 0; p < n; ++p) ok &= tvec.at(p) == tv;
      const CountCsr expanded = dmat.expand();
      for (const count_t v : expanded.values()) ok &= v == te;
      t.row({"K(x)K", std::to_string(na), std::to_string(nb),
             std::to_string(deg), std::to_string(tv), std::to_string(te),
             ok ? "yes" : "NO"});
    }
    // Ex 1(b): K ⊗ J.
    {
      const Graph a = gen::clique(na), b = gen::clique_with_loops(nb);
      const count_t tv = (n - nb) * (n - 2 * nb) / 2;
      const count_t te = n - 2 * nb;
      const auto tvec = kron::vertex_triangles(a, b);
      const auto dmat = kron::edge_triangles(a, b);
      bool ok = true;
      for (vid p = 0; p < n; ++p) ok &= tvec.at(p) == tv;
      const CountCsr expanded = dmat.expand();
      for (const count_t v : expanded.values()) ok &= v == te;
      t.row({"K(x)J", std::to_string(na), std::to_string(nb),
             std::to_string((na - 1) * nb), std::to_string(tv),
             std::to_string(te), ok ? "yes" : "NO"});
    }
    // Ex 1(c): J ⊗ J = K_n + I.
    {
      const Graph a = gen::clique_with_loops(na);
      const Graph b = gen::clique_with_loops(nb);
      const count_t tv = (n - 1) * (n - 2) / 2;
      const count_t te = n - 2;
      const auto tvec = kron::vertex_triangles(a, b);
      bool ok = true;
      for (vid p = 0; p < n; ++p) ok &= tvec.at(p) == tv;
      ok &= kron::total_triangles(a, b) == n * (n - 1) * (n - 2) / 6;
      t.row({"J(x)J", std::to_string(na), std::to_string(nb),
             std::to_string(n - 1), std::to_string(tv), std::to_string(te),
             ok ? "yes" : "NO"});
    }
  }
  t.print(std::cout);
  std::cout << "\nEx. 1(c) realizes the maximum possible triangle count for "
               "a graph of its size (C is a clique).\n";
}

void bm_vertex_formula_cliques(benchmark::State& state) {
  const vid n = static_cast<vid>(state.range(0));
  const Graph a = gen::clique(n), b = gen::clique(n);
  for (auto _ : state) {
    const auto expr = kron::vertex_triangles(a, b);
    benchmark::DoNotOptimize(expr.sum());
  }
}
BENCHMARK(bm_vertex_formula_cliques)->Arg(16)->Arg(64)->Arg(128);

void bm_general_selfloop_formula(benchmark::State& state) {
  const vid n = static_cast<vid>(state.range(0));
  const Graph a = gen::clique_with_loops(n);
  const Graph b = gen::clique_with_loops(n);
  for (auto _ : state) {
    const auto expr = kron::vertex_triangles(a, b);
    benchmark::DoNotOptimize(expr.sum());
  }
}
BENCHMARK(bm_general_selfloop_formula)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

KT_BENCH_MAIN(print_artifact)
