// E2 — Fig. 7: egonets of nine product vertices built from three degree-3
// factor vertices with 1, 2 and 3 triangles. Degrees must be uniform (9 for
// A⊗A, 12 for A⊗B) and the measured egonet triangle counts must match
// Thm 1 / Cor 1 exactly — the t_p grids the paper prints are reproduced
// verbatim for A⊗B: {12,14,16 / 24,28,32 / 36,42,48}.
#include <optional>

#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

Graph make_factor() { return gen::holme_kim(5000, 3, 0.6, 7); }

void print_artifact() {
  kt_bench::banner("E2 (Fig. 7)", "egonet validation of per-vertex counts");
  const Graph a = make_factor();
  const Graph b = a.with_all_self_loops();
  const auto t = triangle::participation_vertices(a);

  std::optional<vid> picks[3];
  for (vid v = 0; v < a.num_vertices(); ++v) {
    if (a.nonloop_degree(v) == 3 && t[v] >= 1 && t[v] <= 3 && !picks[t[v] - 1]) {
      picks[t[v] - 1] = v;
    }
  }
  if (!picks[0] || !picks[1] || !picks[2]) {
    std::cout << "factor lacks the needed degree-3 vertices; adjust seed\n";
    return;
  }
  bool all_ok = true;
  for (const auto& [right, name, expected_deg] :
       {std::tuple<const Graph&, const char*, count_t>{a, "A (x) A", 9},
        std::tuple<const Graph&, const char*, count_t>{b, "A (x) B", 12}}) {
    const kron::KronGraphView c(a, right);
    const kron::TriangleOracle oracle(a, right);
    const kron::KronIndex idx(right.num_vertices());
    std::cout << "\n" << name << " (expected degree " << expected_deg
              << " everywhere):\n";
    util::Table table({"t(i)", "t(k)", "deg(p)", "t_p measured", "t_p formula"});
    for (int ti = 0; ti < 3; ++ti) {
      for (int tk = 0; tk < 3; ++tk) {
        const vid p = idx.compose(*picks[ti], *picks[tk]);
        const auto ego = analysis::extract_egonet(c, p);
        const count_t measured = analysis::center_triangles(ego);
        const count_t formula = oracle.vertex_triangles(p);
        all_ok &= measured == formula &&
                  c.nonloop_degree(p) == expected_deg;
        table.row({std::to_string(ti + 1), std::to_string(tk + 1),
                   std::to_string(c.nonloop_degree(p)),
                   std::to_string(measured), std::to_string(formula)});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\npaper's A (x) B grid: 12,14,16 / 24,28,32 / 36,42,48 — "
            << (all_ok ? "all egonets agree with the formulas"
                       : "MISMATCH DETECTED")
            << "\n";
}

void bm_egonet_extraction(benchmark::State& state) {
  const Graph a = make_factor();
  const Graph b = a.with_all_self_loops();
  const kron::KronGraphView c(a, b);
  // Sample low-degree vertices (egonet cost is O(deg²)).
  std::vector<vid> sample;
  for (vid p = 1; p < c.num_vertices() && sample.size() < 64;
       p += c.num_vertices() / 97) {
    if (c.nonloop_degree(p) <= 64) sample.push_back(p);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto ego = analysis::extract_egonet(c, sample[i % sample.size()]);
    benchmark::DoNotOptimize(ego.graph.nnz());
    ++i;
  }
}
BENCHMARK(bm_egonet_extraction)->Unit(benchmark::kMicrosecond);

void bm_center_triangles(benchmark::State& state) {
  const Graph a = make_factor();
  const kron::KronGraphView c(a, a);
  const auto ego = analysis::extract_egonet(c, 12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::center_triangles(ego));
  }
}
BENCHMARK(bm_center_triangles)->Unit(benchmark::kMicrosecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
