// Multi-process runner benchmark (BENCH_runner.json): forked shard
// workers vs the in-process serial run, plus the cost of recovering from
// an injected worker crash and the price of durability (journaled run,
// resume from a complete journal).
//
// Artifact contract (consumed by CI):
//   * every mode's report must PASS;
//   * the multi-process, crash-recovery, journaled and resumed reports
//     must be bit-identical to the in-process serial report under
//     runner::comparable() — the binary exits non-zero on any merge
//     divergence, failing the job;
//   * "recovery_overhead" records workers4_kill wall / workers4 wall: the
//     price of one SIGKILLed worker attempt (re-dispatch + backoff);
//   * "journal_overhead" records workers4_journal wall / workers4 wall:
//     the fsync-per-record price of crash-safety;
//   * "resume_overhead" records workers4_resume wall / workers4 wall: a
//     resume of a COMPLETE journal reloads every fragment and executes
//     nothing, so this is the pure verification cost (expected << 1);
//   * "trace_overhead" records workers4_trace wall / workers4 wall with
//     the flight recorder hot (coordinator spans + per-worker trace
//     export/stitch). The binary exits non-zero above 1.05 — tracing a
//     run must cost at most 5%. Both legs take the best of two walls so
//     a loaded box cannot fail the gate on scheduler noise alone.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/plan.hpp"
#include "api/pipeline.hpp"
#include "common.hpp"
#include "obs/trace.hpp"
#include "runner/runner.hpp"
#include "util/runmeta.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace kronotri;

// bench_validate's over-budget preset (materialized edge list ~7x the
// 1 MiB accumulator budget) plus a census base unit: the validate shards
// are the parallelizable work the forked workers split.
constexpr const char* kPlanText =
    "kron:(hk:n=1500,m=4,p=0.6,seed=7)x(clique:n=5,loops=1) "
    "census validate:mem_budget=1M";

api::RunPlan bench_plan() {
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = 1;  // process-level parallelism is what we measure
  return plan;
}

std::string journal_dir() {
  return "/tmp/kronotri_bench_journal_" + std::to_string(::getpid());
}

struct ModeResult {
  std::string name;
  unsigned workers = 1;
  std::string fault;
  double wall_s = 0;
  bool pass = false;
  bool merge_identical = true;  // vs the serial reference
  count_t edges = 0;
  std::size_t events = 0;
  std::size_t recoveries = 0;  // failed attempts re-dispatched
  std::size_t resumed = 0;     // units reloaded from journal fragments
  std::size_t trace_events = 0;
  bool trace_valid = true;  // export parsed and held the expected spans
  std::string comparable_dump;
};

ModeResult run_mode(const std::string& name, unsigned workers,
                    const std::string& fault,
                    const std::string& journal = "", bool resume = false,
                    bool trace = false) {
  ModeResult r;
  r.name = name;
  r.workers = workers;
  r.fault = fault;
  runner::Options opt;
  opt.workers = workers;
  opt.fault_spec = fault;
  opt.straggler_min_s = 60;  // measure recovery, not speculation
  opt.journal_dir = journal;
  opt.resume = resume;
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  if (trace) {
    rec.clear();
    rec.set_enabled(true);
  }
  const util::WallTimer timer;
  const api::RunReport report = runner::execute(bench_plan(), opt);
  r.wall_s = timer.seconds();
  if (trace) {
    rec.set_enabled(false);
    r.trace_events = rec.event_count();
    bool coord = false, attempt = false;
    const util::json::Value doc = rec.export_json();
    if (const util::json::Value* events = doc.find("traceEvents")) {
      for (const util::json::Value& ev : events->items()) {
        const std::string ev_name = ev.get_string("name", "");
        coord = coord || ev_name == "runner::execute";
        attempt = attempt || ev_name == "attempt";
      }
    }
    r.trace_valid = r.trace_events > 0 && coord && attempt;
    rec.clear();
  }
  r.pass = report.pass && report.error.empty();
  r.edges = report.num_undirected_edges;
  r.events = report.worker_events.size();
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.outcome == "resumed") {
      ++r.resumed;
    } else if (e.outcome != "ok") {
      ++r.recoveries;
    }
  }
  r.comparable_dump = runner::comparable(report.to_json()).dump_string(0);
  return r;
}

std::vector<ModeResult> g_results;
bool g_all_ok = true;

const ModeResult& mode(const std::string& name) {
  for (const ModeResult& r : g_results) {
    if (r.name == name) return r;
  }
  throw std::logic_error("unknown bench mode " + name);
}

double overhead_vs_workers4(const std::string& name) {
  const double base = mode("workers4").wall_s;
  return base > 0 ? mode(name).wall_s / base : 0.0;
}

/// Best of two walls (correctness fields and-ed): the traced-overhead
/// gate compares two forked-worker walls, and one scheduler hiccup on a
/// shared box would otherwise dominate a ≤5% bound.
ModeResult best_of_two(const std::string& name, unsigned workers,
                       bool trace) {
  ModeResult a = run_mode(name, workers, "", "", false, trace);
  const ModeResult b = run_mode(name, workers, "", "", false, trace);
  const bool pass = a.pass && b.pass;
  const bool trace_valid = a.trace_valid && b.trace_valid;
  if (b.wall_s < a.wall_s) a = b;
  a.pass = pass;
  a.trace_valid = trace_valid;
  return a;
}

void print_artifact() {
  kt_bench::banner("Multi-process runner (BENCH_runner.json)",
                   "forked workers; crash recovery; journal + resume cost");

  const std::string jdir = journal_dir();
  std::filesystem::remove_all(jdir);
  g_results.push_back(run_mode("in_process", 1, ""));
  g_results.push_back(best_of_two("workers4", 4, /*trace=*/false));
  g_results.push_back(run_mode("workers4_kill", 4, "kill:shard=1:attempt=0"));
  // The journaled run leaves a COMPLETE journal behind; the resume leg
  // reloads it without executing a single unit.
  g_results.push_back(run_mode("workers4_journal", 4, "", jdir));
  g_results.push_back(run_mode("workers4_resume", 4, "", jdir, true));
  // Same run with the flight recorder hot — the ≤5% cost contract.
  g_results.push_back(best_of_two("workers4_trace", 4, /*trace=*/true));
  std::filesystem::remove_all(jdir);

  const ModeResult& serial = g_results[0];
  for (ModeResult& r : g_results) {
    r.merge_identical = r.comparable_dump == serial.comparable_dump;
    g_all_ok = g_all_ok && r.pass && r.merge_identical;
  }
  // The kill mode must actually have recovered from something, and the
  // resume mode must have reloaded everything (zero fresh executions).
  g_all_ok = g_all_ok && mode("workers4_kill").recoveries >= 1;
  g_all_ok = g_all_ok && mode("workers4_resume").resumed >= 1 &&
             mode("workers4_resume").recoveries == 0;
  // Tracing must actually record (coordinator + attempt spans present)
  // and must not cost more than 5% over the untraced 4-worker run.
  const double trace_overhead = overhead_vs_workers4("workers4_trace");
  g_all_ok = g_all_ok && mode("workers4_trace").trace_valid &&
             trace_overhead <= 1.05;

  util::Table t({"mode", "workers", "fault", "wall s", "edges/s",
                 "attempts", "recoveries", "resumed", "verdict"});
  for (const ModeResult& r : g_results) {
    t.row({r.name, std::to_string(r.workers),
           r.fault.empty() ? "-" : r.fault, std::to_string(r.wall_s),
           util::commas(static_cast<count_t>(
               r.wall_s > 0 ? static_cast<double>(r.edges) / r.wall_s : 0)),
           std::to_string(r.events), std::to_string(r.recoveries),
           std::to_string(r.resumed),
           r.pass && r.merge_identical ? "PASS" : "FAIL"});
  }
  t.print(std::cout);

  util::json::Value j = util::json::Value::object();
  j.set("plan", kPlanText);
  util::json::Value modes = util::json::Value::array();
  for (const ModeResult& r : g_results) {
    util::json::Value m = util::json::Value::object();
    m.set("name", r.name);
    m.set("workers", r.workers);
    m.set("fault", r.fault);
    m.set("wall_seconds", r.wall_s);
    m.set("edges_per_second",
          r.wall_s > 0 ? static_cast<double>(r.edges) / r.wall_s : 0.0);
    m.set("pass", r.pass);
    m.set("merge_identical_to_serial", r.merge_identical);
    m.set("worker_attempts", r.events);
    m.set("recovered_attempts", r.recoveries);
    m.set("resumed_units", r.resumed);
    modes.push_back(std::move(m));
  }
  j.set("modes", std::move(modes));
  j.set("speedup_workers4",
        mode("workers4").wall_s > 0
            ? mode("in_process").wall_s / mode("workers4").wall_s
            : 0.0);
  j.set("recovery_overhead", overhead_vs_workers4("workers4_kill"));
  j.set("journal_overhead", overhead_vs_workers4("workers4_journal"));
  j.set("resume_overhead", overhead_vs_workers4("workers4_resume"));
  j.set("trace_overhead", trace_overhead);
  j.set("trace_events", mode("workers4_trace").trace_events);
  j.set("all_pass", g_all_ok);
  j.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream out("BENCH_runner.json");
  j.dump(out);
  out << "\n";
  std::cout << "\nwrote BENCH_runner.json ("
            << (g_all_ok ? "all modes PASS, merges bit-identical"
                         : "FAILURE: divergent merge or failed mode")
            << "; recovery overhead "
            << overhead_vs_workers4("workers4_kill") << "x; journal overhead "
            << overhead_vs_workers4("workers4_journal")
            << "x; resume overhead "
            << overhead_vs_workers4("workers4_resume") << "x; trace overhead "
            << trace_overhead << "x)\n";
}

void bm_runner_workers(benchmark::State& state) {
  runner::Options opt;
  opt.workers = static_cast<unsigned>(state.range(0));
  opt.straggler_min_s = 60;
  for (auto _ : state) {
    const api::RunReport report = runner::execute(bench_plan(), opt);
    benchmark::DoNotOptimize(report.pass);
  }
}
BENCHMARK(bm_runner_workers)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = kt_bench::run(argc, argv, print_artifact);
  if (rc != 0) return rc;
  return g_all_ok ? 0 : 1;  // CI gates on merge identity
}
