// Multi-process runner benchmark (BENCH_runner.json): forked shard
// workers vs the in-process serial run, plus the cost of recovering from
// an injected worker crash.
//
// Artifact contract (consumed by CI):
//   * every mode's report must PASS;
//   * the multi-process and crash-recovery reports must be bit-identical
//     to the in-process serial report under runner::comparable() — the
//     binary exits non-zero on any merge divergence, failing the job;
//   * "recovery_overhead" records workers4_kill wall / workers4 wall: the
//     price of one SIGKILLed worker attempt (re-dispatch + backoff).
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.hpp"
#include "api/pipeline.hpp"
#include "common.hpp"
#include "runner/runner.hpp"
#include "util/runmeta.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace kronotri;

// bench_validate's over-budget preset (materialized edge list ~7x the
// 1 MiB accumulator budget) plus a census base unit: the validate shards
// are the parallelizable work the forked workers split.
constexpr const char* kPlanText =
    "kron:(hk:n=1500,m=4,p=0.6,seed=7)x(clique:n=5,loops=1) "
    "census validate:mem_budget=1M";

api::RunPlan bench_plan() {
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = 1;  // process-level parallelism is what we measure
  return plan;
}

struct ModeResult {
  std::string name;
  unsigned workers = 1;
  std::string fault;
  double wall_s = 0;
  bool pass = false;
  bool merge_identical = true;  // vs the serial reference
  count_t edges = 0;
  std::size_t events = 0;
  std::size_t recoveries = 0;  // non-"ok" attempt outcomes
  std::string comparable_dump;
};

ModeResult run_mode(const std::string& name, unsigned workers,
                    const std::string& fault) {
  ModeResult r;
  r.name = name;
  r.workers = workers;
  r.fault = fault;
  runner::Options opt;
  opt.workers = workers;
  opt.fault_spec = fault;
  opt.straggler_min_s = 60;  // measure recovery, not speculation
  const util::WallTimer timer;
  const api::RunReport report = runner::execute(bench_plan(), opt);
  r.wall_s = timer.seconds();
  r.pass = report.pass && report.error.empty();
  r.edges = report.num_undirected_edges;
  r.events = report.worker_events.size();
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.outcome != "ok") ++r.recoveries;
  }
  r.comparable_dump = runner::comparable(report.to_json()).dump_string(0);
  return r;
}

std::vector<ModeResult> g_results;
bool g_all_ok = true;

void print_artifact() {
  kt_bench::banner("Multi-process runner (BENCH_runner.json)",
                   "forked shard workers vs in-process; crash recovery cost");

  g_results.push_back(run_mode("in_process", 1, ""));
  g_results.push_back(run_mode("workers4", 4, ""));
  g_results.push_back(run_mode("workers4_kill", 4, "kill:shard=1:attempt=0"));

  const ModeResult& serial = g_results[0];
  for (ModeResult& r : g_results) {
    r.merge_identical = r.comparable_dump == serial.comparable_dump;
    g_all_ok = g_all_ok && r.pass && r.merge_identical;
  }
  // The kill mode must actually have recovered from something.
  g_all_ok = g_all_ok && g_results[2].recoveries >= 1;

  util::Table t({"mode", "workers", "fault", "wall s", "edges/s",
                 "attempts", "recoveries", "verdict"});
  for (const ModeResult& r : g_results) {
    t.row({r.name, std::to_string(r.workers),
           r.fault.empty() ? "-" : r.fault, std::to_string(r.wall_s),
           util::commas(static_cast<count_t>(
               r.wall_s > 0 ? static_cast<double>(r.edges) / r.wall_s : 0)),
           std::to_string(r.events), std::to_string(r.recoveries),
           r.pass && r.merge_identical ? "PASS" : "FAIL"});
  }
  t.print(std::cout);

  util::json::Value j = util::json::Value::object();
  j.set("plan", kPlanText);
  util::json::Value modes = util::json::Value::array();
  for (const ModeResult& r : g_results) {
    util::json::Value m = util::json::Value::object();
    m.set("name", r.name);
    m.set("workers", r.workers);
    m.set("fault", r.fault);
    m.set("wall_seconds", r.wall_s);
    m.set("edges_per_second",
          r.wall_s > 0 ? static_cast<double>(r.edges) / r.wall_s : 0.0);
    m.set("pass", r.pass);
    m.set("merge_identical_to_serial", r.merge_identical);
    m.set("worker_attempts", r.events);
    m.set("recovered_attempts", r.recoveries);
    modes.push_back(std::move(m));
  }
  j.set("modes", std::move(modes));
  j.set("speedup_workers4",
        g_results[1].wall_s > 0 ? g_results[0].wall_s / g_results[1].wall_s
                                : 0.0);
  j.set("recovery_overhead",
        g_results[1].wall_s > 0 ? g_results[2].wall_s / g_results[1].wall_s
                                : 0.0);
  j.set("all_pass", g_all_ok);
  j.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream out("BENCH_runner.json");
  j.dump(out);
  out << "\n";
  std::cout << "\nwrote BENCH_runner.json ("
            << (g_all_ok ? "all modes PASS, merges bit-identical"
                         : "FAILURE: divergent merge or failed mode")
            << "; recovery overhead "
            << (g_results[1].wall_s > 0
                    ? g_results[2].wall_s / g_results[1].wall_s
                    : 0.0)
            << "x)\n";
}

void bm_runner_workers(benchmark::State& state) {
  runner::Options opt;
  opt.workers = static_cast<unsigned>(state.range(0));
  opt.straggler_min_s = 60;
  for (auto _ : state) {
    const api::RunReport report = runner::execute(bench_plan(), opt);
    benchmark::DoNotOptimize(report.pass);
  }
}
BENCHMARK(bm_runner_workers)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = kt_bench::run(argc, argv, print_artifact);
  if (rc != 0) return rc;
  return g_all_ok ? 0 : 1;  // CI gates on merge identity
}
