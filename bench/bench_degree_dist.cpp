// E11 — §III.A / §IV.B degree structure: d_C = d_A ⊗ d_B, the exact degree
// histogram of the product by factor-histogram convolution, the max-ratio
// SQUARING law ‖d_C‖∞/n_C = (‖d_A‖∞/n_A)(‖d_B‖∞/n_B), and heavy-tail
// persistence (log-log slope).
#include <cmath>

#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("E11 (§III.A / §IV.B)", "degree distribution structure");
  const Graph a = gen::holme_kim(50000, 3, 0.6, 67);
  const Graph b = gen::barabasi_albert(20000, 2, 68);

  const auto sa = analysis::summarize_degrees(a);
  const auto sb = analysis::summarize_degrees(b);
  util::WallTimer timer;
  const auto sc = analysis::summarize_kron_degrees(a, b);
  const double conv_s = timer.seconds();

  auto fmt = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return std::string(buf);
  };
  util::Table t({"graph", "vertices", "max degree", "mean", "max/n",
                 "loglog slope"});
  auto row = [&](const std::string& name, count_t n,
                 const analysis::DegreeSummary& s) {
    t.row({name, util::human(static_cast<double>(n)),
           util::commas(s.max_degree), fmt(s.mean_degree), fmt(s.max_ratio),
           fmt(s.loglog_slope)});
  };
  row("A (Holme-Kim)", a.num_vertices(), sa);
  row("B (Barabasi-Albert)", b.num_vertices(), sb);
  row("C = A (x) B", a.num_vertices() * b.num_vertices(), sc);
  t.print(std::cout);

  std::cout << "\nmax-ratio squaring law: (maxA/nA)*(maxB/nB) = "
            << fmt(sa.max_ratio * sb.max_ratio) << " vs measured "
            << fmt(sc.max_ratio) << " — "
            << (std::abs(sa.max_ratio * sb.max_ratio - sc.max_ratio) <
                        1e-12
                    ? "exact"
                    : "MISMATCH")
            << "\n";
  std::cout << "exact product degree histogram ("
            << util::commas(sc.histogram.size())
            << " distinct degrees over "
            << util::human(static_cast<double>(a.num_vertices()) *
                           static_cast<double>(b.num_vertices()))
            << " vertices) computed in " << conv_s
            << " s by factor-histogram convolution\n";
  std::cout << "\nno prime degree above max(d_A)·1 can appear unless a "
               "factor provides it — d_C values are exactly the pairwise "
               "products (the paper's 'not a perfect power law' remark).\n";

  // Contribution (d): triangle distributions transfer the same way. The
  // exact t_C histogram of the 10⁹-vertex product, factor-side.
  util::WallTimer tri_timer;
  const kron::TriangleOracle oracle(a, b);
  const auto th = oracle.triangle_histogram();
  const double tri_s = tri_timer.seconds();
  count_t nonzero_vertices = 0, max_t = 0;
  for (const auto& [tval, cnt] : th) {
    if (tval > 0) nonzero_vertices += cnt;
    max_t = std::max(max_t, tval);
  }
  std::cout << "\ntriangle-participation distribution of C (exact, "
            << tri_s << " s): " << util::commas(th.size())
            << " distinct values, max t_p = " << util::commas(max_t) << ", "
            << util::human(static_cast<double>(nonzero_vertices))
            << " vertices in >=1 triangle\n";
}

void bm_degree_convolution(benchmark::State& state) {
  const Graph a = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 69);
  const Graph b = gen::barabasi_albert(static_cast<vid>(state.range(0)), 2, 70);
  for (auto _ : state) {
    const auto s = analysis::summarize_kron_degrees(a, b);
    benchmark::DoNotOptimize(s.max_degree);
  }
}
BENCHMARK(bm_degree_convolution)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void bm_degree_vector_formula(benchmark::State& state) {
  const Graph a = gen::holme_kim(10000, 3, 0.6, 71);
  const Graph b = a.with_all_self_loops();
  const auto expr = kron::degrees(a, b);
  vid p = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.at(p));
    p = (p * 2654435761u + 7) % expr.size();
  }
}
BENCHMARK(bm_degree_vector_formula);

}  // namespace

KT_BENCH_MAIN(print_artifact)
