// E4 — Ex. 2 / Fig. 3: the hub-cycle counterexample. C = A ⊗ A has a RICHER
// truss structure than any simple product formula predicts: Δ splits
// 32/64/32 over {1,2,4} (that part IS a Kronecker product, Thm 2), but the
// truss decomposition has 128 edges in T⁽³⁾, 80 in T⁽⁴⁾, none in T⁽⁵⁾ —
// computed here by direct peeling of the materialized product.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("E4 (Ex. 2 / Fig. 3)",
                   "hub-cycle product: truss is not a simple product");
  const Graph a = gen::hub_cycle();
  const auto ta = truss::decompose(a);
  std::cout << "factor A: 5 vertices, " << a.num_undirected_edges()
            << " edges, " << triangle::count_total(a)
            << " triangles; |T3(A)| = " << ta.edges_in_truss(3)
            << ", |T4(A)| = " << ta.edges_in_truss(4) << "\n\n";

  const Graph c = kron::kron_graph(a, a);
  const auto delta = triangle::edge_support_masked(c);
  std::map<count_t, count_t> hist;
  for (const count_t v : delta.values()) ++hist[v];

  std::cout << "C = A (x) A: " << c.num_vertices() << " vertices, "
            << c.num_undirected_edges() << " edges, "
            << triangle::count_total(c) << " triangles (paper: 25 / 128 / 96)\n\n";

  util::Table dh({"Δ(e)", "edges (ours)", "edges (paper)", "edge kind"});
  dh.row({"1", util::commas(hist[1] / 2), "32", "cycle-cycle"});
  dh.row({"2", util::commas(hist[2] / 2), "64", "hub-cycle / cycle-hub"});
  dh.row({"4", util::commas(hist[4] / 2), "32", "hub-hub"});
  dh.print(std::cout);

  const auto tc = truss::decompose(c);
  util::Table th({"kappa", "|T^kappa(C)| (ours)", "(paper)"});
  th.row({"3", util::commas(tc.edges_in_truss(3)), "128"});
  th.row({"4", util::commas(tc.edges_in_truss(4)), "80"});
  th.row({"5", util::commas(tc.edges_in_truss(5)), "0"});
  th.print(std::cout);
  std::cout << "\nnote: |T4(A)| = 0 yet |T4(C)| = 80 — the truss "
               "decomposition of a product is not the product of the "
               "decompositions (why Thm 3 needs its Δ_B ≤ 1 assumption).\n";
}

void bm_truss_hub_cycle_product(benchmark::State& state) {
  const Graph a = gen::hub_cycle();
  const Graph c = kron::kron_graph(a, a);
  for (auto _ : state) {
    const auto t = truss::decompose(c);
    benchmark::DoNotOptimize(t.max_truss);
  }
}
BENCHMARK(bm_truss_hub_cycle_product)->Unit(benchmark::kMicrosecond);

void bm_truss_scaling(benchmark::State& state) {
  // Peeling cost on an ER graph of growing size.
  const vid n = static_cast<vid>(state.range(0));
  const Graph g = gen::erdos_renyi(n, 8.0 / static_cast<double>(n), 99);
  for (auto _ : state) {
    const auto t = truss::decompose(g);
    benchmark::DoNotOptimize(t.max_truss);
  }
  state.counters["edges"] = static_cast<double>(g.num_undirected_edges());
}
BENCHMARK(bm_truss_scaling)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
