// E12 — communication-free generation (§I, [3]): edge-emission throughput
// of the partitioned stream over the pipeline facade. Compares the
// per-edge optional pull against the batched pull and the multi-threaded
// stream_parallel fan-out on a scale-20-equivalent product (≈2^20 product
// vertices), and writes the headline numbers to BENCH_generation.json so
// the perf trajectory is machine-readable across PRs.
#include <ctime>
#include <fstream>
#include <thread>

#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

/// Degree census that also records its worker thread's CPU seconds between
/// the first batch and do_finish(). Wall-clock eps on an oversubscribed box
/// measures the scheduler; CPU seconds per edge — windowed to the worker's
/// own consume loop, excluding flatten/spawn/join — measures what the
/// fan-out actually controls: per-item cost with no cross-worker
/// synchronization. This is the ROADMAP's parallel_scaling_efficiency
/// signal (>= 1.0 means no parallelization tax).
class TimedDegreeSink : public api::DegreeCensusSink {
 public:
  using api::DegreeCensusSink::DegreeCensusSink;

  [[nodiscard]] double cpu_seconds() const noexcept { return cpu_seconds_; }

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override {
    if (!started_) {
      start_ns_ = cpu_now_ns();
      started_ = true;
    }
    DegreeCensusSink::do_consume(batch);
  }
  void do_finish() override {
    if (started_) {
      cpu_seconds_ = static_cast<double>(cpu_now_ns() - start_ns_) * 1e-9;
    }
  }

 private:
  static std::uint64_t cpu_now_ns() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

  bool started_ = false;
  std::uint64_t start_ns_ = 0;
  double cpu_seconds_ = 0;
};

struct GenerationNumbers {
  esz edges = 0;
  double per_edge_eps = 0;
  double batched_eps = 0;
  double batched_census_eps = 0;
  double parallel_eps = 0;
  double parallel_cpu_eps = 0;
  double run_plan_eps = 0;
  unsigned threads = 0;
  unsigned hardware_threads = 0;
  vid product_vertices = 0;
};

void write_json(const GenerationNumbers& n) {
  util::json::Value j = util::json::Value::object();
  j.set("bench", "generation");
  j.set("hardware_threads", std::thread::hardware_concurrency());
  j.set("product_vertices", n.product_vertices);
  j.set("stored_entries", n.edges);
  j.set("per_edge_eps", n.per_edge_eps);
  j.set("batched_eps", n.batched_eps);
  j.set("batched_speedup", n.batched_eps / n.per_edge_eps);
  j.set("batched_census_eps", n.batched_census_eps);
  j.set("parallel_eps", n.parallel_eps);
  j.set("parallel_threads", n.threads);
  j.set("parallel_vs_batched_census", n.parallel_eps / n.batched_census_eps);
  j.set("parallel_cpu_eps", n.parallel_cpu_eps);
  j.set("parallel_scaling_efficiency",
        n.parallel_cpu_eps / n.batched_census_eps);
  j.set("run_plan_stream_eps", n.run_plan_eps);
  j.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream json("BENCH_generation.json");
  j.dump(json);
  json << "\n";
  std::cout << "\nwrote BENCH_generation.json (batched speedup "
            << util::human(n.batched_eps / n.per_edge_eps, 3)
            << "x; parallel vs 1-thread census "
            << util::human(n.parallel_eps / n.batched_census_eps, 3)
            << "x wall, " << util::human(
                   n.parallel_cpu_eps / n.batched_census_eps, 3)
            << "x per CPU-second";
  if (n.hardware_threads < n.threads) {
    std::cout << " — " << n.threads << " partitions share "
              << n.hardware_threads
              << " hardware thread(s), so wall eps is scheduler-bound";
  }
  std::cout << ")\n";
}

void print_artifact() {
  kt_bench::banner("E12 (generation contract)",
                   "per-edge vs batched vs parallel edge streaming");
  // Scale-20-equivalent product: a 1024-vertex scale-free factor squared
  // gives 2^20 product vertices and tens of millions of stored entries.
  const Graph a =
      api::GeneratorRegistry::builtin().build("hk:n=1024,m=3,p=0.6,seed=73");
  const Graph b = a;
  const kron::KronGraphView c(a, b);

  const double factor_bytes =
      static_cast<double>((a.nnz() + b.nnz()) * sizeof(vid) * 2);
  const double product_bytes = static_cast<double>(c.nnz()) *
                               static_cast<double>(sizeof(vid) * 2);
  std::cout << "C: " << util::human(static_cast<double>(c.num_vertices()))
            << " vertices, " << util::human(static_cast<double>(c.nnz()))
            << " stored entries; factored representation "
            << util::human(factor_bytes) << "B vs materialized "
            << util::human(product_bytes) << "B ("
            << util::human(product_bytes / factor_bytes) << "x compression)\n\n";

  GenerationNumbers numbers;
  numbers.product_vertices = c.num_vertices();
  numbers.threads = 4;
  numbers.hardware_threads = std::thread::hardware_concurrency();

  util::Table t({"mode", "partitions", "edges emitted", "time (s)",
                 "edges/s"});
  const auto record = [&](const char* name, std::uint64_t nparts, esz total,
                          double secs) {
    t.row({name, std::to_string(nparts), util::commas(total),
           std::to_string(secs),
           util::human(static_cast<double>(total) / secs)});
    return static_cast<double>(total) / secs;
  };

  // Flattened once, shared by every stream below — the fan-out no longer
  // re-flattens both factors per worker.
  const kron::FlatEdges fa(a), fb(b);

  {
    util::WallTimer timer;
    kron::EdgeStream stream(fa, fb);
    esz total = 0;
    vid acc = 0;
    while (auto e = stream.next()) {
      acc ^= e->u;
      ++total;
    }
    benchmark::DoNotOptimize(acc);
    numbers.edges = total;
    numbers.per_edge_eps = record("per-edge optional pull", 1, total,
                                  timer.seconds());
  }
  {
    util::WallTimer timer;
    kron::EdgeStream stream(fa, fb);
    std::vector<kron::EdgeRecord> batch(api::kDefaultBatchSize);
    esz total = 0;
    vid acc = 0;
    while (const std::size_t got = stream.next_batch(batch)) {
      for (std::size_t i = 0; i < got; ++i) acc ^= batch[i].u;
      total += got;
    }
    benchmark::DoNotOptimize(acc);
    numbers.batched_eps = record("batched pull", 1, total, timer.seconds());
  }
  {
    // Work-equal single-thread baseline for the fan-out: the same degree
    // census through the same sink machinery, one partition.
    util::WallTimer timer;
    api::DegreeCensusSink sink(c.num_vertices());
    const esz total = api::stream_into(fa, fb, sink);
    benchmark::DoNotOptimize(sink.degrees().data());
    numbers.batched_census_eps =
        record("batched pull + degree census", 1, total, timer.seconds());
  }
  {
    // Degree-census sinks: real per-edge work on every worker, merged
    // after. CPU seconds are windowed per worker (first batch → finish),
    // so parallel_cpu_eps excludes flatten/spawn/join and preserves the
    // >= 1.0 scaling-efficiency invariant.
    util::WallTimer timer;
    auto sinks = api::stream_parallel(
        fa, fb, numbers.threads, [&](std::uint64_t, std::uint64_t) {
          return std::make_unique<TimedDegreeSink>(c.num_vertices());
        });
    const double secs = timer.seconds();
    double cpu_secs = 0;
    for (const auto& s : sinks) {
      cpu_secs += static_cast<const TimedDegreeSink&>(*s).cpu_seconds();
    }
    auto& merged = static_cast<api::DegreeCensusSink&>(*sinks[0]);
    for (std::size_t i = 1; i < sinks.size(); ++i) {
      merged.merge(static_cast<const api::DegreeCensusSink&>(*sinks[i]));
    }
    benchmark::DoNotOptimize(merged.degrees().data());
    numbers.parallel_eps =
        record("stream_parallel + degree census", numbers.threads,
               merged.edges_consumed(), secs);
    numbers.parallel_cpu_eps =
        static_cast<double>(merged.edges_consumed()) / cpu_secs;
    t.row({"  (per CPU-second across workers)", std::to_string(numbers.threads),
           "", std::to_string(cpu_secs),
           util::human(numbers.parallel_cpu_eps)});
  }
  {
    // The same fan-out driven through the declarative job engine: ONE plan
    // whose degree analysis rides the tee'd stream pass. Wall time comes
    // from the report's stream stage; the TeeSink hop and per-partition
    // sink creation are part of what this row measures.
    api::RunPlan plan;
    plan.spec = api::GraphSpec::parse(
        "kron:(hk:n=1024,m=3,p=0.6,seed=73)x(hk:n=1024,m=3,p=0.6,seed=73)");
    plan.analyses.push_back(
        {"degree", {{"histogram", "0"}, {"measured", "1"}}});
    plan.options.threads = numbers.threads;
    const api::RunReport report = api::run(plan);
    double stream_wall = 0;
    for (const auto& st : report.stages) {
      if (st.name == "stream") stream_wall = st.wall_s;
    }
    numbers.run_plan_eps =
        record("run-plan stream + degree census", report.partitions,
               report.stored_entries, stream_wall);
  }
  t.print(std::cout);
  std::cout << "\npartitions only need the two factors — the distributed "
               "generation of [3] with ground truth attached.\n";
  write_json(numbers);
}

void bm_stream_per_edge(benchmark::State& state) {
  const Graph a = gen::holme_kim(1000, 3, 0.6, 79);
  const Graph b = a.with_all_self_loops();
  for (auto _ : state) {
    kron::EdgeStream stream(a, b);
    esz n = 0;
    while (stream.next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * b.nnz()));
}
BENCHMARK(bm_stream_per_edge)->Unit(benchmark::kMillisecond);

void bm_stream_batched(benchmark::State& state) {
  const Graph a = gen::holme_kim(1000, 3, 0.6, 79);
  const Graph b = a.with_all_self_loops();
  std::vector<kron::EdgeRecord> batch(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    kron::EdgeStream stream(a, b);
    esz n = 0;
    while (const std::size_t got = stream.next_batch(batch)) n += got;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * b.nnz()));
}
BENCHMARK(bm_stream_batched)->Arg(256)->Arg(8192)->Unit(benchmark::kMillisecond);

void bm_stream_annotated(benchmark::State& state) {
  const Graph a = gen::holme_kim(1000, 3, 0.6, 79);
  const Graph b = a.with_all_self_loops();
  const kron::TriangleOracle oracle(a, b);
  for (auto _ : state) {
    api::TriangleCensusSink sink(oracle);
    api::stream_into(a, b, sink);
    benchmark::DoNotOptimize(sink.triangle_sum());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * b.nnz()));
}
BENCHMARK(bm_stream_annotated)->Unit(benchmark::kMillisecond);

void bm_neighbor_expansion(benchmark::State& state) {
  const Graph a = gen::holme_kim(10000, 3, 0.6, 83);
  const kron::KronGraphView c(a, a);
  vid p = 1;
  for (auto _ : state) {
    const auto nb = c.neighbors(p % c.num_vertices());
    benchmark::DoNotOptimize(nb.size());
    p = p * 2654435761u + 11;
  }
}
BENCHMARK(bm_neighbor_expansion)->Unit(benchmark::kMicrosecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
