// E12 — communication-free generation (§I, [3]): edge-emission throughput
// of the partitioned stream, bare and with inline exact per-edge ground
// truth, plus the compression ratio of the factored representation.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("E12 (generation contract)",
                   "partitioned edge streaming with inline ground truth");
  const Graph a = gen::holme_kim(2000, 3, 0.6, 73);
  const Graph b = a.with_all_self_loops();
  const kron::TriangleOracle oracle(a, b);
  const kron::KronGraphView c(a, b);

  const double factor_bytes =
      static_cast<double>((a.nnz() + b.nnz()) * sizeof(vid) * 2);
  const double product_bytes = static_cast<double>(c.nnz()) *
                               static_cast<double>(sizeof(vid) * 2);
  std::cout << "C: " << util::human(static_cast<double>(c.num_vertices()))
            << " vertices, " << util::human(static_cast<double>(c.nnz()))
            << " stored entries; factored representation "
            << util::human(factor_bytes) << "B vs materialized "
            << util::human(product_bytes) << "B ("
            << util::human(product_bytes / factor_bytes) << "x compression)\n\n";

  util::Table t({"mode", "partitions", "edges emitted", "time (s)",
                 "edges/s"});
  auto run = [&](const char* name, std::uint64_t nparts, bool annotate) {
    util::WallTimer timer;
    esz total = 0;
    count_t tri_acc = 0;
    for (std::uint64_t part = 0; part < nparts; ++part) {
      kron::EdgeStream stream(a, b, part, nparts);
      while (auto e = stream.next()) {
        if (annotate) tri_acc += *oracle.edge_triangles(e->u, e->v);
        ++total;
      }
    }
    const double secs = timer.seconds();
    benchmark::DoNotOptimize(tri_acc);
    t.row({name, std::to_string(nparts), util::commas(total),
           std::to_string(secs),
           util::human(static_cast<double>(total) / secs)});
  };
  run("bare stream", 1, false);
  run("bare stream", 16, false);
  run("with exact Δ(e) annotation", 1, true);
  run("with exact Δ(e) annotation", 16, true);
  t.print(std::cout);
  std::cout << "\npartitions only need the two factors — the distributed "
               "generation of [3] with ground truth attached.\n";
}

void bm_stream_bare(benchmark::State& state) {
  const Graph a = gen::holme_kim(1000, 3, 0.6, 79);
  const Graph b = a.with_all_self_loops();
  for (auto _ : state) {
    kron::EdgeStream stream(a, b);
    esz n = 0;
    while (stream.next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * b.nnz()));
}
BENCHMARK(bm_stream_bare)->Unit(benchmark::kMillisecond);

void bm_stream_annotated(benchmark::State& state) {
  const Graph a = gen::holme_kim(1000, 3, 0.6, 79);
  const Graph b = a.with_all_self_loops();
  const kron::TriangleOracle oracle(a, b);
  for (auto _ : state) {
    kron::EdgeStream stream(a, b);
    count_t acc = 0;
    while (auto e = stream.next()) acc += *oracle.edge_triangles(e->u, e->v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * b.nnz()));
}
BENCHMARK(bm_stream_annotated)->Unit(benchmark::kMillisecond);

void bm_neighbor_expansion(benchmark::State& state) {
  const Graph a = gen::holme_kim(10000, 3, 0.6, 83);
  const kron::KronGraphView c(a, a);
  vid p = 1;
  for (auto _ : state) {
    const auto nb = c.neighbors(p % c.num_vertices());
    benchmark::DoNotOptimize(nb.size());
    p = p * 2654435761u + 11;
  }
}
BENCHMARK(bm_neighbor_expansion)->Unit(benchmark::kMicrosecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
