// E10 — the §I complexity claim: counting τ(C) through the Kronecker
// formula costs O(|E_C|^{3/4}) worst case (triangle-count the two factors),
// versus O(|E_C|^{3/2}) for a direct count that ignores the product
// structure. The table sweeps factor sizes, materializes C while that is
// still feasible, and reports both times — the gap widens superlinearly and
// direct counting falls off a cliff long before the paper's trillion-edge
// regime.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("E10 (§I complexity claim)",
                   "Kronecker-formula census vs direct count on C");
  util::Table t({"factor n", "|E(C)|", "tau(C)", "formula (s)", "direct (s)",
                 "speedup"});
  for (const vid n : {40u, 80u, 160u, 320u}) {
    const Graph f = api::GeneratorRegistry::builtin().build(
        "hk:n=" + std::to_string(n) + ",m=3,p=0.7,seed=59");

    util::WallTimer formula_timer;
    const count_t tau_formula = kron::total_triangles(f, f);
    const double formula_s = formula_timer.seconds();

    const Graph c = kron::kron_graph(f, f);
    util::WallTimer direct_timer;
    const count_t tau_direct = triangle::count_total(c);
    const double direct_s = direct_timer.seconds();

    char speed[32];
    std::snprintf(speed, sizeof speed, "%.1fx",
                  formula_s > 0 ? direct_s / formula_s : 0.0);
    t.row({std::to_string(n),
           util::commas(c.num_undirected_edges()),
           util::commas(tau_formula), std::to_string(formula_s),
           std::to_string(direct_s),
           tau_formula == tau_direct ? speed : "COUNT MISMATCH"});
  }
  t.print(std::cout);
  std::cout << "\nformula cost grows with the FACTOR edge count "
               "(O(|E_C|^1/2) objects); direct cost with the PRODUCT — at "
               "paper scale (|E_C| ~ 10^12) only the formula path is "
               "feasible at all.\n";
}

void bm_formula_census(benchmark::State& state) {
  const Graph f = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.7, 61);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kron::total_triangles(f, f));
  }
  state.counters["E_C"] = static_cast<double>(f.nnz()) *
                          static_cast<double>(f.nnz()) / 2.0;
}
BENCHMARK(bm_formula_census)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void bm_direct_census_of_product(benchmark::State& state) {
  const Graph f = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.7, 61);
  const Graph c = kron::kron_graph(f, f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(triangle::count_total(c));
  }
  state.counters["E_C"] = static_cast<double>(c.num_undirected_edges());
}
BENCHMARK(bm_direct_census_of_product)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
