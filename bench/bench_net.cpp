// Multi-node runner benchmark (BENCH_net.json): the same plan
// bench_runner forks locally, executed over loopback `kronotri agent`
// endpoints — pure remote, mixed local+remote, and remote under an
// injected connection drop.
//
// Artifact contract (consumed by CI):
//   * every mode's report must PASS;
//   * every agents-mode report must be bit-identical to the in-process
//     serial report under runner::comparable() — the binary exits
//     non-zero on any merge divergence, failing the job;
//   * the drop_conn mode must actually have recovered (>= 1 disconnect
//     re-dispatched) — a fault that never fired gates the job too;
//   * "agents_overhead" records agents2 wall / workers2 wall: the price
//     of crossing a loopback socket instead of a pipe-less fork (frame
//     encode + TCP + fragment in JSON instead of a tmp file).
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/plan.hpp"
#include "api/pipeline.hpp"
#include "common.hpp"
#include "net/agent.hpp"
#include "runner/runner.hpp"
#include "util/runmeta.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace kronotri;

// bench_runner's plan: a census base unit plus over-budget validate
// shards — the parallelizable work the agents split.
constexpr const char* kPlanText =
    "kron:(hk:n=1500,m=4,p=0.6,seed=7)x(clique:n=5,loops=1) "
    "census validate:mem_budget=1M";

api::RunPlan bench_plan() {
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = 1;  // process-level parallelism is what we measure
  return plan;
}

struct ModeResult {
  std::string name;
  unsigned workers = 0;
  unsigned agents = 0;
  std::string fault;
  double wall_s = 0;
  bool pass = false;
  bool merge_identical = true;  // vs the serial reference
  count_t edges = 0;
  std::size_t events = 0;
  std::size_t recoveries = 0;  // failed attempts re-dispatched
  std::size_t remote_ok = 0;   // "ok" attempts that ran on an agent
  std::string comparable_dump;
};

ModeResult run_mode(const std::string& name, unsigned workers,
                    const std::vector<std::string>& agents,
                    const std::string& fault = "") {
  ModeResult r;
  r.name = name;
  r.workers = workers;
  r.agents = static_cast<unsigned>(agents.size());
  r.fault = fault;
  runner::Options opt;
  opt.workers = workers;
  opt.agents = agents;
  opt.fault_spec = fault;
  opt.straggler_min_s = 60;  // measure the transport, not speculation
  const util::WallTimer timer;
  const api::RunReport report = runner::execute(bench_plan(), opt);
  r.wall_s = timer.seconds();
  r.pass = report.pass && report.error.empty();
  r.edges = report.num_undirected_edges;
  r.events = report.worker_events.size();
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.outcome == "ok") {
      if (!e.host.empty()) ++r.remote_ok;
    } else {
      ++r.recoveries;
    }
  }
  r.comparable_dump = runner::comparable(report.to_json()).dump_string(0);
  return r;
}

std::vector<ModeResult> g_results;
bool g_all_ok = true;

const ModeResult& mode(const std::string& name) {
  for (const ModeResult& r : g_results) {
    if (r.name == name) return r;
  }
  throw std::logic_error("unknown bench mode " + name);
}

void print_artifact() {
  kt_bench::banner("Multi-node runner (BENCH_net.json)",
                   "loopback agents; mixed local+remote; drop_conn recovery");

  net::AgentOptions aopt;
  aopt.slots = 2;
  net::Agent a1{aopt};
  net::Agent a2{aopt};
  std::string err;
  if (!a1.start(&err) || !a2.start(&err)) {
    std::cerr << "bench_net: cannot start loopback agents: " << err << "\n";
    g_all_ok = false;
    return;
  }
  const std::vector<std::string> agents = {a1.endpoint(), a2.endpoint()};

  g_results.push_back(run_mode("in_process", 1, {}));
  g_results.push_back(run_mode("workers2", 2, {}));
  g_results.push_back(run_mode("agents2", 0, agents));
  g_results.push_back(run_mode("mixed_1local_2agents", 1, agents));
  g_results.push_back(
      run_mode("agents2_drop", 0, agents, "drop_conn:shard=1:attempt=0"));
  a1.stop();
  a2.stop();

  const ModeResult& serial = g_results[0];
  for (ModeResult& r : g_results) {
    r.merge_identical = r.comparable_dump == serial.comparable_dump;
    g_all_ok = g_all_ok && r.pass && r.merge_identical;
  }
  // The remote modes must actually have run remotely, and the drop mode
  // must have recovered from a real disconnect.
  g_all_ok = g_all_ok && mode("agents2").remote_ok >= 1;
  g_all_ok = g_all_ok && mode("agents2_drop").recoveries >= 1;

  util::Table t({"mode", "workers", "agents", "fault", "wall s", "edges/s",
                 "attempts", "remote ok", "recoveries", "verdict"});
  for (const ModeResult& r : g_results) {
    t.row({r.name, std::to_string(r.workers), std::to_string(r.agents),
           r.fault.empty() ? "-" : r.fault, std::to_string(r.wall_s),
           util::commas(static_cast<count_t>(
               r.wall_s > 0 ? static_cast<double>(r.edges) / r.wall_s : 0)),
           std::to_string(r.events), std::to_string(r.remote_ok),
           std::to_string(r.recoveries),
           r.pass && r.merge_identical ? "PASS" : "FAIL"});
  }
  t.print(std::cout);

  const double agents_overhead =
      mode("workers2").wall_s > 0
          ? mode("agents2").wall_s / mode("workers2").wall_s
          : 0.0;

  util::json::Value j = util::json::Value::object();
  j.set("plan", kPlanText);
  util::json::Value modes = util::json::Value::array();
  for (const ModeResult& r : g_results) {
    util::json::Value m = util::json::Value::object();
    m.set("name", r.name);
    m.set("workers", r.workers);
    m.set("agents", r.agents);
    m.set("fault", r.fault);
    m.set("wall_seconds", r.wall_s);
    m.set("edges_per_second",
          r.wall_s > 0 ? static_cast<double>(r.edges) / r.wall_s : 0.0);
    m.set("pass", r.pass);
    m.set("merge_identical_to_serial", r.merge_identical);
    m.set("worker_attempts", r.events);
    m.set("remote_ok_attempts", r.remote_ok);
    m.set("recovered_attempts", r.recoveries);
    modes.push_back(std::move(m));
  }
  j.set("modes", std::move(modes));
  j.set("agents_overhead", agents_overhead);
  j.set("all_pass", g_all_ok);
  j.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream out("BENCH_net.json");
  j.dump(out);
  out << "\n";
  std::cout << "\nwrote BENCH_net.json ("
            << (g_all_ok ? "all modes PASS, merges bit-identical"
                         : "FAILURE: divergent merge or failed mode")
            << "; agents overhead " << agents_overhead << "x vs 2 local "
            << "workers)\n";
}

void bm_net_agents(benchmark::State& state) {
  net::AgentOptions aopt;
  aopt.slots = static_cast<unsigned>(state.range(0));
  net::Agent agent{aopt};
  if (!agent.start(nullptr)) {
    state.SkipWithError("cannot start loopback agent");
    return;
  }
  runner::Options opt;
  opt.workers = 0;
  opt.agents = {agent.endpoint()};
  opt.straggler_min_s = 60;
  for (auto _ : state) {
    const api::RunReport report = runner::execute(bench_plan(), opt);
    benchmark::DoNotOptimize(report.pass);
  }
  agent.stop();
}
BENCHMARK(bm_net_agents)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = kt_bench::run(argc, argv, print_artifact);
  if (rc != 0) return rc;
  return g_all_ok ? 0 : 1;  // CI gates on merge identity
}
