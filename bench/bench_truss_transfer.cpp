// E5 — Thm 3 + §III.D(b): products with a KNOWN truss decomposition.
// B comes from the paper's preferential-attachment generator (every edge in
// ≤ 1 triangle); the truss decomposition of C = A ⊗ B is then read off the
// decomposition of A alone. The table compares the oracle's per-κ edge
// counts against direct peeling of the materialized product, and the
// microbenchmarks quantify the speedup of knowing over peeling.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("E5 (Thm 3 / §III.D(b))", "known truss decomposition");
  const Graph a = gen::erdos_renyi(24, 0.35, 17);
  const Graph b = gen::one_triangle_pa(40, 18);
  std::cout << "A: ER(24, 0.35), " << a.num_undirected_edges() << " edges; "
            << "B: one-triangle PA, 40 vertices, " << b.num_undirected_edges()
            << " edges (Δ_B ≤ 1: "
            << (truss::edges_in_at_most_one_triangle(b) ? "yes" : "NO")
            << ")\n\n";

  util::WallTimer oracle_timer;
  const truss::KronTrussOracle oracle(a, b);
  const double oracle_s = oracle_timer.seconds();

  util::WallTimer direct_timer;
  const Graph c = kron::kron_graph(a, b);
  const auto direct = truss::decompose(c);
  const double direct_s = direct_timer.seconds();

  util::Table t({"kappa", "|T^kappa| via Thm 3", "|T^kappa| direct peel",
                 "agree"});
  const count_t top = std::max(oracle.max_truss(), direct.max_truss);
  for (count_t kappa = 3; kappa <= top; ++kappa) {
    const count_t o = oracle.edges_in_truss(kappa);
    const count_t d = direct.edges_in_truss(kappa);
    t.row({std::to_string(kappa), util::commas(o), util::commas(d),
           o == d ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nC has " << util::commas(c.num_undirected_edges())
            << " edges; oracle " << oracle_s << " s vs direct peel "
            << direct_s << " s ("
            << (oracle_s > 0 ? direct_s / oracle_s : 0.0) << "x)\n";

  // Per-edge agreement.
  count_t checked = 0, agree = 0;
  for (vid p = 0; p < c.num_vertices(); ++p) {
    for (const vid q : c.neighbors(p)) {
      ++checked;
      agree += oracle.truss_number(p, q) == direct.truss_number.at(p, q);
    }
  }
  std::cout << "per-edge truss numbers: " << agree << "/" << checked
            << " agree\n";
}

void bm_thm3_oracle(benchmark::State& state) {
  const Graph a = gen::erdos_renyi(static_cast<vid>(state.range(0)), 0.3, 21);
  const Graph b = gen::one_triangle_pa(4000, 22);
  for (auto _ : state) {
    const truss::KronTrussOracle oracle(a, b);
    benchmark::DoNotOptimize(oracle.edges_in_truss(3));
  }
  state.counters["product_edges"] = static_cast<double>(
      kron::KronGraphView(a, b).num_undirected_edges());
}
BENCHMARK(bm_thm3_oracle)->Arg(24)->Arg(48)->Unit(benchmark::kMicrosecond);

void bm_direct_truss_of_product(benchmark::State& state) {
  const Graph a = gen::erdos_renyi(static_cast<vid>(state.range(0)), 0.3, 21);
  const Graph b = gen::one_triangle_pa(40, 22);
  const Graph c = kron::kron_graph(a, b);
  for (auto _ : state) {
    const auto t = truss::decompose(c);
    benchmark::DoNotOptimize(t.max_truss);
  }
  state.counters["product_edges"] =
      static_cast<double>(c.num_undirected_edges());
}
BENCHMARK(bm_direct_truss_of_product)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

void bm_one_triangle_pa_generation(benchmark::State& state) {
  const vid n = static_cast<vid>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const Graph b = gen::one_triangle_pa(n, seed++);
    benchmark::DoNotOptimize(b.nnz());
  }
}
BENCHMARK(bm_one_triangle_pa_generation)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
