// E6/E7 — Fig. 4 + Thm 4 (vertices) and Fig. 5 + Thm 5 (edges): the
// 15-flavor directed triangle census of a factor, lifted exactly to the
// product. The table lists, per flavor, the factor totals and the product
// totals t^{(τ)}(C) = t^{(τ)}(A)·Σdiag(B³) — verified against brute-force
// classification on a small materialized product.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

Graph make_directed_factor(vid n, std::uint64_t seed) {
  return gen::randomly_orient(gen::holme_kim(n, 3, 0.5, seed), 0.35,
                              seed + 1);
}

void print_artifact() {
  kt_bench::banner("E6/E7 (Figs. 4-5, Thms 4-5)",
                   "directed triangle census at vertices and edges");
  const Graph a = make_directed_factor(3000, 29);
  const Graph b = gen::clique(3);
  const auto parts = triangle::split_directed(a);
  std::cout << "A: 3000 vertices, " << parts.ar.nnz()
            << " reciprocal slots + " << parts.ad.nnz()
            << " directed edges; B = K3\n\n";

  util::WallTimer timer;
  const auto vertex_exprs = kron::directed_vertex_triangles(a, b);
  const auto edge_exprs = kron::directed_edge_triangles(a, b);
  const double lift_s = timer.seconds();

  util::Table t({"flavor", "t total (A)", "t total (C)", "Δ total (C)"});
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    const auto& expr = vertex_exprs[static_cast<std::size_t>(f)];
    count_t factor_total = 0;
    for (const count_t v : expr.terms()[0].a) factor_total += v;
    t.row({std::string(triangle::to_string(
               static_cast<triangle::VertexTriType>(f))),
           util::commas(factor_total), util::commas(expr.sum()),
           util::commas(edge_exprs[static_cast<std::size_t>(f)].sum())});
  }
  t.print(std::cout);
  std::cout << "\nfull 15+15 census and lift: " << lift_s << " s\n";

  // Cross-check on a small materialized product.
  const Graph small_a = make_directed_factor(48, 31);
  const Graph small_c = kron::kron_graph(small_a, b);
  const auto lifted = kron::directed_vertex_triangles(small_a, b);
  const auto direct = triangle::brute::directed_vertex_census(small_c);
  bool ok = true;
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    ok &= lifted[static_cast<std::size_t>(f)].expand() ==
          direct[static_cast<std::size_t>(f)];
  }
  std::cout << "brute-force verification on a materialized 144-vertex "
               "product: "
            << (ok ? "all 15 flavors agree" : "MISMATCH") << "\n";
}

void bm_directed_vertex_census(benchmark::State& state) {
  const Graph a =
      make_directed_factor(static_cast<vid>(state.range(0)), 37);
  for (auto _ : state) {
    const auto census = triangle::directed_vertex_census(a);
    benchmark::DoNotOptimize(census[0].size());
  }
}
BENCHMARK(bm_directed_vertex_census)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void bm_directed_edge_census(benchmark::State& state) {
  const Graph a =
      make_directed_factor(static_cast<vid>(state.range(0)), 37);
  for (auto _ : state) {
    const auto census = triangle::directed_edge_census(a);
    benchmark::DoNotOptimize(census[0].nnz());
  }
}
BENCHMARK(bm_directed_edge_census)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void bm_split_directed(benchmark::State& state) {
  const Graph a = make_directed_factor(5000, 41);
  for (auto _ : state) {
    const auto parts = triangle::split_directed(a);
    benchmark::DoNotOptimize(parts.ad.nnz());
  }
}
BENCHMARK(bm_split_directed)->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
