// Streaming-validation benchmark (BENCH_validate.json): the sharded
// src/validate/ census against the materializing path.
//
// Artifact contract (consumed by CI):
//   * every preset's ValidationReport must PASS — the binary exits non-zero
//     otherwise, failing the job;
//   * the "over_budget" preset proves the headline capability: its
//     materialized edge list is larger than the configured memory budget,
//     yet the streaming census completes with peak accumulator bytes within
//     the budget (the allocation counter the acceptance criterion asks
//     for); peak RSS is recorded alongside as the ambient signal;
//   * the "small_parity" preset additionally cross-checks the streaming
//     counts bit-for-bit against triangle::analyze on the materialized
//     product and reports the edges/s of both paths.
#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "common.hpp"
#include "util/runmeta.hpp"
#include "kron/product.hpp"
#include "kron/stream.hpp"
#include "kron/view.hpp"
#include "triangle/count.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "validate/report.hpp"
#include "validate/streaming_census.hpp"

namespace {

using namespace kronotri;

long peak_rss_kib() {
#ifdef __unix__
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
#else
  return 0;
#endif
}

struct PresetResult {
  std::string name;
  std::string spec;
  vid n_c = 0;
  esz nnz_c = 0;
  count_t edges = 0;
  std::size_t mem_budget = 0;
  std::size_t num_shards = 0;
  std::size_t peak_accumulator_bytes = 0;
  std::size_t materialized_edge_list_bytes = 0;
  count_t wedge_checks = 0;
  double streaming_s = 0;
  double materialized_s = -1;  // < 0: comparison not run for this preset
  bool bit_identical = true;
  bool report_pass = false;
  long peak_rss_kib = 0;

  [[nodiscard]] bool budget_exceeded_by_materialization() const {
    return materialized_edge_list_bytes > mem_budget;
  }
  [[nodiscard]] bool within_budget() const {
    return peak_accumulator_bytes <= mem_budget;
  }
};

std::vector<Graph> build_factors(const std::string& spec_text) {
  return api::GeneratorRegistry::builtin().build_factors(
      api::GraphSpec::parse(spec_text));
}

PresetResult run_preset(const std::string& name, const std::string& spec_text,
                        std::size_t budget, bool compare_materialized) {
  PresetResult r;
  r.name = name;
  r.spec = spec_text;
  r.mem_budget = budget;
  const auto factors = build_factors(spec_text);

  validate::StreamingOptions opt;
  opt.mem_budget_bytes = budget;
  util::WallTimer stream_timer;
  const validate::ValidationReport report =
      validate::validate_product(factors[0], factors[1], opt);
  r.streaming_s = stream_timer.seconds();
  r.n_c = report.num_vertices;
  r.edges = report.num_edges;
  r.num_shards = report.stats.num_shards;
  r.peak_accumulator_bytes = report.stats.peak_accumulator_bytes;
  r.wedge_checks = report.stats.wedge_checks;
  r.report_pass = report.pass();

  const kron::KronGraphView view(factors[0], factors[1]);
  r.nnz_c = view.nnz();
  r.materialized_edge_list_bytes =
      static_cast<std::size_t>(r.nnz_c) * sizeof(kron::EdgeRecord);

  if (compare_materialized) {
    util::WallTimer mat_timer;
    const Graph c = kron::kron_graph(factors[0], factors[1]);
    const auto stats = triangle::analyze(c);
    r.materialized_s = mat_timer.seconds();
    // Bit-identical cross-check of the streaming shards against the PR-2
    // engine on the materialized product.
    validate::StreamingCensus census(factors[0], factors[1], opt);
    esz edges_seen = 0;
    vid next_vertex = 0;
    census.run([&](const validate::StreamingCensus::Shard& shard) {
      const auto vc = shard.vertex_counts();
      for (std::size_t i = 0; i < vc.size(); ++i, ++next_vertex) {
        if (vc[i] != stats.per_vertex[next_vertex]) r.bit_identical = false;
      }
      shard.for_each_owned_edge([&](vid u, vid v, count_t d) {
        ++edges_seen;
        if (!stats.per_edge.contains(u, v) || stats.per_edge.at(u, v) != d) {
          r.bit_identical = false;
        }
      });
    });
    if (next_vertex != c.num_vertices() ||
        edges_seen * 2 != stats.per_edge.nnz()) {
      r.bit_identical = false;
    }
  }
  r.peak_rss_kib = peak_rss_kib();
  return r;
}

std::vector<PresetResult> g_results;
bool g_all_ok = true;

util::json::Value preset_json(const PresetResult& r) {
  util::json::Value j = util::json::Value::object();
  j.set("name", r.name);
  j.set("spec", r.spec);
  j.set("product_vertices", r.n_c);
  j.set("product_nnz", r.nnz_c);
  j.set("product_edges", r.edges);
  j.set("mem_budget_bytes", r.mem_budget);
  j.set("num_shards", r.num_shards);
  j.set("peak_accumulator_bytes", r.peak_accumulator_bytes);
  j.set("materialized_edge_list_bytes", r.materialized_edge_list_bytes);
  j.set("materialization_exceeds_budget",
        r.budget_exceeded_by_materialization());
  j.set("accumulators_within_budget", r.within_budget());
  j.set("wedge_checks", r.wedge_checks);
  j.set("streaming_seconds", r.streaming_s);
  j.set("streaming_eps",
        r.streaming_s > 0 ? static_cast<double>(r.edges) / r.streaming_s : 0.0);
  j.set("materialized_seconds", r.materialized_s);
  j.set("materialized_eps",
        r.materialized_s > 0
            ? static_cast<double>(r.edges) / r.materialized_s
            : 0.0);
  j.set("bit_identical", r.bit_identical);
  j.set("peak_rss_kib", r.peak_rss_kib);
  j.set("validation_pass", r.report_pass);
  return j;
}

void print_artifact() {
  kt_bench::banner("Streaming validation (BENCH_validate.json)",
                   "sharded census of implicit products vs materialization");

  // Small parity preset: cheap enough to materialize, so both paths run
  // and the streaming counts are cross-checked bit-for-bit.
  g_results.push_back(run_preset(
      "small_parity", "kron:(hk:n=150,m=3,p=0.6,seed=5)x(clique:n=4,loops=1)",
      16u << 10, /*compare_materialized=*/true));

  // Over-budget preset: the materialized edge list (nnz_C · 16 B) is ~7×
  // the 1 MiB budget; the streaming census must complete within it.
  g_results.push_back(run_preset(
      "over_budget", "kron:(hk:n=1500,m=4,p=0.6,seed=7)x(clique:n=5)",
      1u << 20, /*compare_materialized=*/false));

  util::Table t({"preset", "edges", "shards", "budget B", "peak acc B",
                 "mat. list B", "stream s", "mat. s", "verdict"});
  for (const auto& r : g_results) {
    const bool preset_ok =
        r.report_pass && r.bit_identical && r.within_budget() &&
        (r.name != "over_budget" || r.budget_exceeded_by_materialization());
    g_all_ok = g_all_ok && preset_ok;
    t.row({r.name, util::commas(r.edges), std::to_string(r.num_shards),
           util::commas(r.mem_budget), util::commas(r.peak_accumulator_bytes),
           util::commas(r.materialized_edge_list_bytes),
           std::to_string(r.streaming_s),
           r.materialized_s < 0 ? "-" : std::to_string(r.materialized_s),
           preset_ok ? "PASS" : "FAIL"});
  }
  t.print(std::cout);

  util::json::Value j = util::json::Value::object();
  util::json::Value specs = util::json::Value::array();
  for (const auto& r : g_results) specs.push_back(preset_json(r));
  j.set("specs", std::move(specs));
  j.set("all_pass", g_all_ok);
  j.set("metadata", util::run_metadata(api::kDefaultBatchSize));
  std::ofstream out("BENCH_validate.json");
  j.dump(out);
  out << "\n";
  std::cout << "\nwrote BENCH_validate.json ("
            << (g_all_ok ? "all presets PASS" : "VALIDATION FAILURE")
            << "; over_budget censused a product whose edge list is "
            << util::commas(g_results.back().materialized_edge_list_bytes)
            << " B under a " << util::commas(g_results.back().mem_budget)
            << " B accumulator budget)\n";
}

void bm_streaming_census(benchmark::State& state) {
  const auto factors =
      build_factors("kron:(hk:n=300,m=3,p=0.6,seed=9)x(clique:n=4)");
  validate::StreamingOptions opt;
  opt.mem_budget_bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto stats =
        validate::StreamingCensus(factors[0], factors[1], opt).run();
    benchmark::DoNotOptimize(stats.total_triangles);
  }
}
BENCHMARK(bm_streaming_census)
    ->Arg(4 << 10)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void bm_materialized_census(benchmark::State& state) {
  const auto factors =
      build_factors("kron:(hk:n=300,m=3,p=0.6,seed=9)x(clique:n=4)");
  for (auto _ : state) {
    const Graph c = kron::kron_graph(factors[0], factors[1]);
    const auto stats = triangle::analyze(c);
    benchmark::DoNotOptimize(stats.total);
  }
}
BENCHMARK(bm_materialized_census)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = kt_bench::run(argc, argv, print_artifact);
  if (rc != 0) return rc;
  return g_all_ok ? 0 : 1;  // CI gates on the ValidationReports
}
