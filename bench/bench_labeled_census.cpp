// E8 — Fig. 6 + Thms 6/7: the vertex-labeled triangle census with |L| = 3
// colors: (|L|+1 choose 2) = 6 types per vertex label, |L| types per edge
// label pair, lifted exactly to the product with inherited labels.
#include "common.hpp"
#include "kronotri.hpp"

namespace {

using namespace kronotri;

void print_artifact() {
  kt_bench::banner("E8 (Fig. 6, Thms 6-7)", "labeled triangle census");
  const std::uint32_t big_l = 3;
  const Graph a = gen::holme_kim(3000, 3, 0.6, 43);
  const triangle::Labeling lab = gen::random_labels(3000, big_l, 44);
  const Graph b = gen::clique(3).with_all_self_loops();
  static const char* kColor[] = {"r", "g", "b"};

  std::cout << "A: 3000 vertices, " << a.num_undirected_edges()
            << " edges, labels {r,g,b}; B = K3+I; C = A (x) B with labels "
               "inherited from A\n\n";

  util::WallTimer timer;
  util::Table t({"type", "t total (A)", "t total (C)", "Δ total (C)"});
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        const auto tv = kron::labeled_vertex_triangles(a, lab, b, q1, q2, q3);
        count_t factor_total = 0;
        for (const count_t v : tv.terms()[0].a) factor_total += v;
        const auto dv = kron::labeled_edge_triangles(a, lab, b, q1, q2, q3);
        t.row({std::string("R") + kColor[q1] + "(" + kColor[q2] + kColor[q3] +
                   ")",
               util::commas(factor_total), util::commas(tv.sum()),
               util::commas(dv.sum())});
      }
    }
  }
  const double census_s = timer.seconds();
  t.print(std::cout);
  std::cout << "\nall 18 vertex types + edge types lifted in " << census_s
            << " s\n";

  // Brute-force verification on a small materialized product.
  const Graph small_a = gen::holme_kim(40, 3, 0.6, 45);
  const auto small_lab = gen::random_labels(40, big_l, 46);
  const Graph small_c = kron::kron_graph(small_a, b);
  const auto lc = kron::kron_labeling(small_lab, b.num_vertices());
  bool ok = true;
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        ok &= kron::labeled_vertex_triangles(small_a, small_lab, b, q1, q2, q3)
                  .expand() ==
              triangle::brute::labeled_vertex_participation(small_c, lc, q1,
                                                            q2, q3);
      }
    }
  }
  std::cout << "brute-force verification on a materialized 120-vertex "
               "product: "
            << (ok ? "all labeled types agree" : "MISMATCH") << "\n";
}

void bm_labeled_vertex_type(benchmark::State& state) {
  const Graph a = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 47);
  const auto lab =
      gen::random_labels(static_cast<vid>(state.range(0)), 3, 48);
  for (auto _ : state) {
    const auto t = triangle::labeled_vertex_participation(a, lab, 0, 1, 2);
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(bm_labeled_vertex_type)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void bm_labeled_full_census(benchmark::State& state) {
  const Graph a = gen::holme_kim(static_cast<vid>(state.range(0)), 3, 0.6, 49);
  const auto lab =
      gen::random_labels(static_cast<vid>(state.range(0)), 3, 50);
  for (auto _ : state) {
    const auto census = triangle::labeled_census(a, lab);
    benchmark::DoNotOptimize(census.at_vertices.size());
  }
}
BENCHMARK(bm_labeled_full_census)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

KT_BENCH_MAIN(print_artifact)
