// Communication-free partitioned edge generation (§I / [3]): emit one
// partition of E_C with exact per-edge triangle counts attached, writing
// "u v triangles" lines. Each partition needs only the two factors — this
// is the distributed-generation contract demonstrated on one node.
//
//   ./generate_edges [--n 200] [--part 0] [--nparts 4] [--seed 23]
//                    [--out edges.txt] [--limit 10]
#include <fstream>
#include <iostream>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);
  const vid n = cli.get_uint("n", 200);
  const std::uint64_t part = cli.get_uint("part", 0);
  const std::uint64_t nparts = cli.get_uint("nparts", 4);
  const std::uint64_t seed = cli.get_uint("seed", 23);
  const std::uint64_t limit = cli.get_uint("limit", 10);

  const Graph a = gen::holme_kim(n, 3, 0.6, seed);
  const Graph b = a.with_all_self_loops();
  const kron::TriangleOracle oracle(a, b);

  kron::EdgeStream stream(a, b, part, nparts);
  std::cout << "C = A (x) (A+I): "
            << util::human(static_cast<double>(a.num_vertices()) *
                           static_cast<double>(b.num_vertices()))
            << " vertices, "
            << util::human(static_cast<double>(oracle.num_undirected_edges()))
            << " edges; partition " << part << "/" << nparts << " carries "
            << util::commas(stream.partition_size()) << " stored entries\n";

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (cli.has("out")) {
    file.open(cli.get("out", ""));
    if (!file) {
      std::cerr << "cannot open output file\n";
      return 1;
    }
    out = &file;
  }

  util::WallTimer timer;
  esz emitted = 0;
  while (auto e = stream.next()) {
    if (emitted < limit || cli.has("out")) {
      (*out) << e->u << ' ' << e->v << ' '
             << *oracle.edge_triangles(e->u, e->v) << '\n';
    } else if (emitted == limit) {
      std::cout << "  … (pass --out to write the full partition)\n";
    }
    ++emitted;
  }
  const double secs = timer.seconds();
  std::cout << "emitted " << util::commas(emitted) << " edges in " << secs
            << " s ("
            << util::human(static_cast<double>(emitted) / secs)
            << " edges/s with inline exact ground truth)\n";
  return 0;
}
