// Communication-free partitioned edge generation (§I / [3]) on the pipeline
// facade: build the factors from a generator spec, then either emit one
// partition of E_C through a text sink, or fan all partitions out over
// worker threads with stream_parallel — each worker owns its stream and its
// sink, and no worker ever talks to another.
//
//   ./generate_edges [--spec "hk:n=200,m=3,p=0.6,seed=23"] [--n 200]
//                    [--seed 23] [--part 0] [--nparts 4] [--threads 0]
//                    [--out edges.txt] [--limit 10]
//
// --n/--seed feed the default Holme–Kim spec; --spec overrides them. With
// --threads T > 0 the whole edge set is written to --out.part0 …
// --out.part(T-1) in parallel; otherwise only partition --part/--nparts is
// emitted (to stdout, first --limit edges, unless --out is given).
#include <fstream>
#include <iostream>
#include <memory>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);
  const std::string spec =
      cli.get("spec", "hk:n=" + std::to_string(cli.get_uint("n", 200)) +
                          ",m=3,p=0.6,seed=" +
                          std::to_string(cli.get_uint("seed", 23)));
  const std::uint64_t part = cli.get_uint("part", 0);
  const std::uint64_t nparts = cli.get_uint("nparts", 4);
  const std::uint64_t limit = cli.get_uint("limit", 10);
  const auto nthreads = static_cast<unsigned>(cli.get_uint("threads", 0));

  const Graph a = api::GeneratorRegistry::builtin().build(spec);
  const Graph b = a.with_all_self_loops();
  const kron::KronGraphView c(a, b);

  std::cout << "C = A (x) (A+I), A = " << spec << ": "
            << util::human(static_cast<double>(c.num_vertices()))
            << " vertices, "
            << util::human(static_cast<double>(c.num_undirected_edges()))
            << " edges\n";

  if (nthreads > 0) {
    const std::string base = cli.get("out", "edges.txt");
    std::vector<std::unique_ptr<std::ofstream>> files;
    util::WallTimer timer;
    auto sinks = api::stream_parallel(
        a, b, nthreads,
        [&](std::uint64_t p, std::uint64_t) -> std::unique_ptr<api::EdgeSink> {
          files.push_back(std::make_unique<std::ofstream>(
              base + ".part" + std::to_string(p)));
          return std::make_unique<api::TextEdgeSink>(*files.back());
        });
    const double secs = timer.seconds();
    esz total = 0;
    for (const auto& s : sinks) total += s->edges_consumed();
    std::cout << "streamed " << util::commas(total) << " edges into "
              << sinks.size() << " partition files in " << secs << " s ("
              << util::human(static_cast<double>(total) / secs)
              << " edges/s)\n";
    return 0;
  }

  util::WallTimer timer;
  esz emitted = 0;
  if (cli.has("out")) {
    std::ofstream file(cli.get("out", ""));
    if (!file) {
      std::cerr << "cannot open output file\n";
      return 1;
    }
    api::TextEdgeSink sink(file);
    api::StreamOptions options;
    options.part = part;
    options.nparts = nparts;
    emitted = api::stream_into(a, b, sink, options);
  } else {
    // Annotated preview on stdout: each edge with its exact Δ(e). The
    // oracle is only built on this path — the write paths don't need it.
    const kron::TriangleOracle oracle(a, b);
    kron::EdgeStream stream(a, b, part, nparts);
    std::cout << "partition " << part << "/" << nparts << " carries "
              << util::commas(stream.partition_size()) << " stored entries\n";
    while (auto e = stream.next()) {
      if (emitted < limit) {
        std::cout << e->u << ' ' << e->v << ' '
                  << *oracle.edge_triangles(e->u, e->v) << '\n';
      } else if (emitted == limit) {
        std::cout << "  … (pass --out to write the full partition)\n";
      }
      ++emitted;
    }
  }
  const double secs = timer.seconds();
  std::cout << "emitted " << util::commas(emitted) << " edges in " << secs
            << " s ("
            << util::human(static_cast<double>(emitted) / secs)
            << " edges/s)\n";
  return 0;
}
