// Reproduction of the paper's Fig. 7 protocol: pick three degree-3 vertices
// of the factor A that participate in 1, 2 and 3 triangles; each pairs with
// three B-vertices of known triangle count, yielding nine product vertices
// whose egonets are materialized and compared against Thm 1 / Cor 1.
//
//   ./egonet_validation [--n 5000] [--seed 7]
#include <iostream>
#include <optional>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);
  const vid n = cli.get_uint("n", 5000);
  const std::uint64_t seed = cli.get_uint("seed", 7);

  const Graph a = api::GeneratorRegistry::builtin().build(
      "hk:n=" + std::to_string(n) + ",m=3,p=0.6,seed=" + std::to_string(seed));
  const Graph b = a.with_all_self_loops();
  const auto t = triangle::participation_vertices(a);

  // Find degree-3 vertices with exactly 1, 2, 3 triangles (as in Fig. 7).
  std::optional<vid> picks[3];
  for (vid v = 0; v < n; ++v) {
    if (a.nonloop_degree(v) != 3) continue;
    if (t[v] >= 1 && t[v] <= 3 && !picks[t[v] - 1]) picks[t[v] - 1] = v;
  }
  for (int i = 0; i < 3; ++i) {
    if (!picks[i]) {
      std::cerr << "no degree-3 vertex with " << i + 1
                << " triangles found; rerun with another --seed\n";
      return 1;
    }
  }

  bool all_ok = true;
  auto run = [&](const Graph& right, const char* name) {
    const kron::KronGraphView c(a, right);
    const kron::TriangleOracle oracle(a, right);
    const kron::KronIndex idx(right.num_vertices());
    std::cout << "\nC = A (x) " << name << ":\n";
    util::Table table(
        {"p", "i(p)", "k(p)", "deg(p)", "t_p (egonet)", "t_p (formula)", "ok"});
    for (const auto& vi : picks) {
      for (const auto& vk : picks) {
        const vid p = idx.compose(*vi, *vk);
        const auto ego = analysis::extract_egonet(c, p);
        const count_t measured = analysis::center_triangles(ego);
        const count_t predicted = oracle.vertex_triangles(p);
        all_ok &= measured == predicted;
        table.row({std::to_string(p), std::to_string(*vi), std::to_string(*vk),
                   std::to_string(c.nonloop_degree(p)),
                   std::to_string(measured), std::to_string(predicted),
                   measured == predicted ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  };

  std::cout << "factor vertices picked (degree 3, triangles 1/2/3): "
            << *picks[0] << " " << *picks[1] << " " << *picks[2] << "\n";
  run(a, "A      (Thm 1: all degrees 9, t_p = 2*tA*tA in {2,4,6,8,12,18})");
  run(b, "(A+I)  (Cor 1: all degrees 12, t_p = tA*diag(B^3))");

  std::cout << (all_ok ? "\nall egonets match the Kronecker formulas\n"
                       : "\nMISMATCH DETECTED\n");
  return all_ok ? 0 : 1;
}
