// The paper's raison d'être as a workflow: validate a triangle-counting
// IMPLEMENTATION (which knows nothing about Kronecker structure) on a graph
// whose exact answer is known.
//
//  1. Build C = A ⊗ B implicitly; the oracle knows every t_C[p] exactly.
//  2. Materialize C's edge list (what the implementation under test sees).
//  3. Run the implementation under test — here, this library's own
//     structure-oblivious forward kernel, plus a deliberately broken
//     variant to show a failure is caught.
//  4. Diff the implementation's per-vertex counts against the oracle.
//
//   ./validate_implementation [--na 60] [--nb 50] [--seed 31]
//                             [--dump prefix]   (writes edge list + truth)
#include <iostream>

#include "kronotri.hpp"

namespace {

using namespace kronotri;

/// "Implementation under test": counts per-vertex triangles from the edge
/// list alone (no Kronecker structure used).
std::vector<count_t> implementation_under_test(const Graph& c) {
  return triangle::participation_vertices(c);
}

/// A subtly broken implementation: forgets that the forward kernel's
/// orientation already dedupes triangles and drops one wedge direction.
std::vector<count_t> broken_implementation(const Graph& c) {
  std::vector<count_t> t = triangle::participation_vertices(c);
  for (std::size_t v = 0; v < t.size(); v += 7) {
    if (t[v] > 0) --t[v];  // off-by-one on every 7th vertex
  }
  return t;
}

std::size_t diff_count(const std::vector<count_t>& got,
                       const std::vector<count_t>& expected) {
  std::size_t bad = 0;
  for (std::size_t v = 0; v < expected.size(); ++v) {
    bad += got[v] != expected[v] ? 1u : 0u;
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const vid na = cli.get_uint("na", 60);
  const vid nb = cli.get_uint("nb", 50);
  const std::uint64_t seed = cli.get_uint("seed", 31);

  const auto& registry = api::GeneratorRegistry::builtin();
  const Graph a = registry.build("hk:n=" + std::to_string(na) +
                                 ",m=3,p=0.7,seed=" + std::to_string(seed));
  const Graph b = registry.build("hk:n=" + std::to_string(nb) +
                                 ",m=2,p=0.7,seed=" + std::to_string(seed + 1) +
                                 ",loops=1");
  const kron::TriangleOracle oracle(a, b);

  std::cout << "benchmark instance C = A (x) B: " << oracle.num_vertices()
            << " vertices, " << oracle.num_undirected_edges() << " edges, "
            << util::commas(oracle.total_triangles())
            << " triangles (known exactly before any counting)\n";

  // What an external tool would receive: the edge stream collected into an
  // explicit graph through the sink pipeline (C is born streamed, not
  // materialized from a Kronecker routine).
  api::CooCollectorSink collector;
  api::stream_into(a, b, collector);
  const Graph c = collector.to_graph(oracle.num_vertices());
  std::vector<count_t> expected(c.num_vertices());
  for (vid p = 0; p < c.num_vertices(); ++p) {
    expected[p] = oracle.vertex_triangles(p);
  }
  if (cli.has("dump")) {
    const std::string prefix = cli.get("dump", "kron_benchmark");
    io::write_edge_list(c, prefix + ".edges");
    io::write_vertex_counts(expected, prefix + ".truth");
    std::cout << "wrote " << prefix << ".edges and " << prefix
              << ".truth for external tools\n";
  }

  util::WallTimer timer;
  const auto got = implementation_under_test(c);
  const std::size_t bad = diff_count(got, expected);
  std::cout << "\nimplementation under test: " << timer.seconds() << " s, "
            << bad << "/" << expected.size() << " vertices wrong — "
            << (bad == 0 ? "PASS" : "FAIL") << "\n";

  const auto broken = broken_implementation(c);
  const std::size_t bad2 = diff_count(broken, expected);
  std::cout << "deliberately broken variant: " << bad2 << "/"
            << expected.size() << " vertices wrong — "
            << (bad2 > 0 ? "correctly caught (FAIL)" : "NOT CAUGHT?!")
            << "\n";

  return bad == 0 && bad2 > 0 ? 0 : 1;
}
