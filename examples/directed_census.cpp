// Directed triangle census demo (§IV): split a directed factor into
// reciprocal and directed parts, census all 15 triangle flavors at its
// vertices, and lift the census to a Kronecker product with an undirected
// right factor via Thm 4 — exactly the kind of diverse per-vertex ground
// truth the paper proposes for validating directed-graph analytics.
//
//   ./directed_census [--n 2000] [--precip 0.3] [--seed 11]
#include <iostream>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);
  const vid n = cli.get_uint("n", 2000);
  const double precip = cli.get_double("precip", 0.3);
  const std::uint64_t seed = cli.get_uint("seed", 11);

  // A: scale-free skeleton, randomly oriented with ~30% reciprocal edges.
  const auto& registry = api::GeneratorRegistry::builtin();
  const Graph skeleton = registry.build(
      "hk:n=" + std::to_string(n) + ",m=3,p=0.5,seed=" + std::to_string(seed));
  const Graph a = gen::randomly_orient(skeleton, precip, seed + 1);
  const Graph b = registry.build("clique:n=3");  // undirected right factor

  const auto parts = triangle::split_directed(a);
  std::cout << "factor A: " << a.num_vertices() << " vertices, " << a.nnz()
            << " stored entries (" << parts.ar.nnz() << " reciprocal slots, "
            << parts.ad.nnz() << " directed)\n";
  std::cout << "product C = A (x) K3: " << a.num_vertices() * 3
            << " vertices\n\n";

  util::WallTimer timer;
  const auto census = triangle::directed_vertex_census(a);
  const auto lifted = kron::directed_vertex_triangles(a, b);
  const double census_s = timer.seconds();

  util::Table table({"flavor", "factor total", "product total (Thm 4)"});
  count_t factor_sum = 0, product_sum = 0;
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    count_t ft = 0;
    for (const count_t v : census[static_cast<std::size_t>(f)]) ft += v;
    const count_t pt = lifted[static_cast<std::size_t>(f)].sum();
    factor_sum += ft;
    product_sum += pt;
    table.row({std::string(triangle::to_string(
                   static_cast<triangle::VertexTriType>(f))),
               util::commas(ft), util::commas(pt)});
  }
  table.row({"(sum)", util::commas(factor_sum), util::commas(product_sum)});
  table.print(std::cout);

  // Each triangle is counted once per vertex: flavor sums / 3 = triangles.
  std::cout << "\ntriangles in closure(A): " << util::commas(factor_sum / 3)
            << ", in closure(C): " << util::commas(product_sum / 3) << "\n";
  std::cout << "census + lift computed in " << census_s << " s\n";

  // The directed degree formulas of §IV.B.
  const auto dd = kron::directed_degrees(a, b);
  std::cout << "\nsample product vertex 42: reciprocal degree "
            << dd.reciprocal.at(42) << ", directed-out "
            << dd.directed_out.at(42) << ", directed-in "
            << dd.directed_in.at(42) << "\n";
  return 0;
}
