// Reproduction of the paper's §VI experiment (Table VI) at configurable
// scale: build a scale-free factor A, let B = A + I, and compute the exact
// vertex/edge/triangle counts of the trillion-edge-scale products A⊗A and
// A⊗B from factor statistics alone — never materializing the products.
//
//   ./trillion_scale_census [--n 325729] [--m 3] [--ptriad 0.6]
//                           [--seed 1803] [--spec SPEC] [--graph file.txt]
//
// The factor comes from the generator registry (--spec overrides the
// Holme–Kim default assembled from --n/--m/--ptriad/--seed). With --graph,
// it is read from an edge list (e.g. the real web-NotreDame data) instead;
// the file is symmetrized and stripped of self loops on ingest, matching
// the paper's preprocessing.
#include <iostream>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);

  util::WallTimer total;
  Graph a = [&] {
    if (cli.has("graph")) {
      io::ReadOptions opts;
      opts.symmetrize = true;
      opts.drop_self_loops = true;
      return io::read_edge_list(cli.get("graph", ""), opts);
    }
    const std::string spec =
        cli.get("spec", "hk:n=" + std::to_string(cli.get_uint("n", 325729)) +
                            ",m=" + std::to_string(cli.get_uint("m", 3)) +
                            ",p=" + cli.get("ptriad", "0.6") + ",seed=" +
                            std::to_string(cli.get_uint("seed", 1803)));
    std::cout << "generating scale-free factor " << spec
              << " — web-NotreDame stand-in\n";
    return api::GeneratorRegistry::builtin().build(spec);
  }();
  const Graph b = a.with_all_self_loops();
  std::cout << "factor ready in " << total.seconds() << " s\n\n";

  util::WallTimer census;
  const auto stats_a = triangle::analyze(a);
  const count_t tau_aa = kron::total_triangles(a, a);
  const count_t tau_ab = kron::total_triangles(a, b);
  const double census_s = census.seconds();

  const kron::KronGraphView caa(a, a), cab(a, b);

  auto row = [](const std::string& name, count_t v, count_t e, count_t t) {
    return std::vector<std::string>{name, util::human(static_cast<double>(v)),
                                    util::human(static_cast<double>(e)),
                                    util::human(static_cast<double>(t)),
                                    util::commas(t)};
  };
  util::Table table({"Matrix", "Vertices", "Edges", "Triangles", "(exact)"});
  table.row(row("A", a.num_vertices(), a.num_undirected_edges(), stats_a.total));
  table.row(row("B = A+I", b.num_vertices(), b.num_undirected_edges(),
                stats_a.total));
  table.row(row("A (x) A", caa.num_vertices(), caa.num_undirected_edges(),
                tau_aa));
  table.row(row("A (x) B", cab.num_vertices(), cab.num_undirected_edges(),
                tau_ab));
  table.print(std::cout);

  std::cout << "\nKronecker triangle census of both products: " << census_s
            << " s, " << util::commas(stats_a.wedge_checks)
            << " wedge checks on the factor\n";
  std::cout << "(paper, web-NotreDame on a laptop: ~10.5 s, 7,734,429 wedge "
               "checks, 111.4T / 141.0T triangles)\n";

  // Spot-verify the oracle at a few low-degree product vertices via egonets
  // (egonet materialization is O(deg²); hubs of C have squared-hub degrees).
  const kron::TriangleOracle oracle(a, b);
  count_t checked = 0, ok = 0;
  for (vid p = 1; p < cab.num_vertices() && checked < 5;
       p += cab.num_vertices() / 23) {
    if (cab.nonloop_degree(p) > 200) continue;
    const auto ego = analysis::extract_egonet(cab, p);
    ok += analysis::center_triangles(ego) == oracle.vertex_triangles(p) ? 1u
                                                                        : 0u;
    ++checked;
  }
  std::cout << "egonet spot checks on A (x) B: " << ok << "/" << checked
            << " vertices match the formula\n";
  return ok == checked ? 0 : 1;
}
