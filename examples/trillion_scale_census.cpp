// Reproduction of the paper's §VI experiment (Table VI) at configurable
// scale: build a scale-free factor A, let B = A + I, and compute the exact
// vertex/edge/triangle counts of the trillion-edge-scale products A⊗A and
// A⊗B from factor statistics alone — never materializing the products.
//
//   ./trillion_scale_census [--n 325729] [--m 3] [--ptriad 0.6]
//                           [--seed 1803] [--spec SPEC] [--graph file.txt]
//
// Each product census is a declarative RunPlan executed by api::run() —
// the same job description `kronotri run --plan` takes, and the unit the
// ROADMAP's distributed scheduling will ship to remote nodes. The factor
// comes from the generator registry (--spec overrides the Holme–Kim
// default assembled from --n/--m/--ptriad/--seed). With --graph, it is
// read through the registry's `file:` family (symmetrized, self loops
// stripped), matching the paper's web-NotreDame preprocessing.
#include <iostream>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);

  // The factor spec: a file: spec for real data, a generator spec
  // otherwise. (File paths containing ',' or ')' cannot be spelled in the
  // spec grammar.)
  const std::string factor_spec = [&]() -> std::string {
    if (cli.has("graph")) {
      return "file:path=" + cli.get("graph", "") +
             ",symmetrize=1,drop_loops=1";
    }
    return cli.get("spec",
                   "hk:n=" + std::to_string(cli.get_uint("n", 325729)) +
                       ",m=" + std::to_string(cli.get_uint("m", 3)) +
                       ",p=" + cli.get("ptriad", "0.6") +
                       ",seed=" + std::to_string(cli.get_uint("seed", 1803)));
  }();
  std::cout << "factor: " << factor_spec << " — web-NotreDame stand-in\n\n";

  // Two plans, two products: A ⊗ A and A ⊗ B with B = A + I (the loops=1
  // modifier on the right factor). The census analysis reads everything
  // off the factors — the products are never materialized. (Plans are
  // self-contained by design, so each run regenerates its factors from the
  // spec; with seeded generators that is deterministic, and the cost is
  // factor-sized, not product-sized.)
  api::GraphSpec a_spec = api::GraphSpec::parse(factor_spec);
  api::GraphSpec b_spec = a_spec;
  b_spec.params["loops"] = "1";  // B = A + I, as a universal modifier

  // The A ⊗ B plan also carries the Fig. 7 egonet spot checks: pick a few
  // low-degree product vertices up front (egonet materialization is
  // O(deg²); hubs of C have squared-hub degrees) and append one egonet
  // analysis per vertex — all verified in the same run.
  api::RunPlan ab_plan;
  ab_plan.spec.family = "kron";
  ab_plan.spec.factors = {a_spec, b_spec};
  ab_plan.analyses.push_back({"census", {}});
  {
    const auto factors =
        api::GeneratorRegistry::builtin().build_factors(ab_plan.spec);
    const kron::KronGraphView cab(factors[0], factors[1]);
    count_t planned = 0;
    for (vid p = 1; p < cab.num_vertices() && planned < 5;
         p += cab.num_vertices() / 23) {
      if (cab.nonloop_degree(p) > 200) continue;
      ab_plan.analyses.push_back({"egonet", {{"vertex", std::to_string(p)}}});
      ++planned;
    }
  }

  api::RunPlan aa_plan;
  aa_plan.spec.family = "kron";
  aa_plan.spec.factors = {a_spec, a_spec};
  aa_plan.analyses.push_back({"census", {}});
  const api::RunReport raa = api::run(aa_plan);
  const api::RunReport rab = api::run(ab_plan);
  // The paper's ~10.5 s is census-only; read the census stages off the
  // reports so factor (re)generation is not billed to the census.
  const double census_s =
      raa.analyses.front().wall_s + rab.analyses.front().wall_s;

  auto row = [](const std::string& name, const util::json::Value& m) {
    const count_t v = m.find("vertices")->as_uint();
    const count_t e = m.find("edges")->as_uint();
    const count_t t = m.find("triangles")->as_uint();
    return std::vector<std::string>{name, util::human(static_cast<double>(v)),
                                    util::human(static_cast<double>(e)),
                                    util::human(static_cast<double>(t)),
                                    util::commas(t)};
  };
  // Matrix rows come straight out of the census reports' data trees.
  const auto& aa = raa.analyses.front().data.find("matrices")->items();
  const auto& ab = rab.analyses.front().data.find("matrices")->items();
  util::Table table({"Matrix", "Vertices", "Edges", "Triangles", "(exact)"});
  table.row(row("A", aa[0]));
  table.row(row("B = A+I", ab[1]));
  table.row(row("A (x) A", aa[2]));
  table.row(row("A (x) B", ab[2]));
  table.print(std::cout);

  std::cout << "\nKronecker triangle census of both products: " << census_s
            << " s (factor-sized work only)\n";
  std::cout << "(paper, web-NotreDame on a laptop: ~10.5 s, 7,734,429 wedge "
               "checks, 111.4T / 141.0T triangles)\n";

  // The egonet spot checks already ran inside the A ⊗ B plan.
  count_t ok = 0, spots = 0;
  for (const auto& ar : rab.analyses) {
    if (ar.name != "egonet") continue;
    ++spots;
    ok += ar.pass ? 1u : 0u;
  }
  std::cout << "egonet spot checks on A (x) B: " << ok << "/" << spots
            << " vertices match the formula\n";
  return rab.pass ? 0 : 1;
}
