// Graphs with a KNOWN truss decomposition (§III.D + Thm 3): pair any factor
// A with a §III.D(b)-generated B (every edge in ≤ 1 triangle) and the truss
// decomposition of the trillion-scale product is determined by the small
// decomposition of A — no peeling of C required. A benchmark-grade
// instrument: run your truss implementation on C and compare against the
// oracle.
//
//   ./truss_designer [--na 40] [--nb 2000] [--pa 0.3] [--seed 17]
#include <iostream>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);
  const vid na = cli.get_uint("na", 40);
  const vid nb = cli.get_uint("nb", 2000);
  const double pa = cli.get_double("pa", 0.3);
  const std::uint64_t seed = cli.get_uint("seed", 17);

  const auto& registry = api::GeneratorRegistry::builtin();
  const Graph a = registry.build(
      "er:n=" + std::to_string(na) + ",p=" + cli.get("pa", "0.3") +
      ",seed=" + std::to_string(seed));
  const Graph b = registry.build("onetri:n=" + std::to_string(nb) +
                                 ",seed=" + std::to_string(seed + 1));
  std::cout << "A: ER(" << na << ", " << pa << ") with "
            << a.num_undirected_edges() << " edges\n";
  std::cout << "B: one-triangle PA graph, " << nb << " vertices, "
            << b.num_undirected_edges() << " edges, Δ_B ≤ 1: "
            << (truss::edges_in_at_most_one_triangle(b) ? "yes" : "NO")
            << "\n";

  util::WallTimer timer;
  const truss::KronTrussOracle oracle(a, b);
  std::cout << "C = A (x) B: " << na * nb << " vertices, "
            << kron::KronGraphView(a, b).num_undirected_edges()
            << " edges — truss decomposition known in " << timer.seconds()
            << " s (decomposed only A)\n\n";

  util::Table table({"kappa", "|T^kappa(A)|", "|T^kappa(C)|"});
  const auto& ta = oracle.factor_a_truss();
  for (count_t kappa = 3; kappa <= oracle.max_truss(); ++kappa) {
    table.row({std::to_string(kappa), util::commas(ta.edges_in_truss(kappa)),
               util::commas(oracle.edges_in_truss(kappa))});
  }
  table.print(std::cout);

  // Verify on a small instance by materializing and peeling C directly.
  const Graph a_small = registry.build(
      "er:n=8,p=0.5,seed=" + std::to_string(seed + 2));
  const Graph b_small = registry.build(
      "onetri:n=12,seed=" + std::to_string(seed + 3));
  const truss::KronTrussOracle small_oracle(a_small, b_small);
  const Graph c_small = kron::kron_graph(a_small, b_small);
  const auto direct = truss::decompose(c_small);
  bool ok = direct.max_truss == small_oracle.max_truss();
  for (vid p = 0; p < c_small.num_vertices() && ok; ++p) {
    for (const vid q : c_small.neighbors(p)) {
      if (small_oracle.truss_number(p, q) != direct.truss_number.at(p, q)) {
        ok = false;
        break;
      }
    }
  }
  std::cout << "\nsmall-instance verification (materialize + peel C, "
            << c_small.num_undirected_edges() << " edges): "
            << (ok ? "oracle matches direct decomposition" : "MISMATCH")
            << "\n";
  return ok ? 0 : 1;
}
