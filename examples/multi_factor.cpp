// Multi-factor Kronecker chains: the k-factor generalization used by the
// paper's companion work [3] for extreme-scale benchmark generation.
// Three 300-vertex factors already give a 27-million-vertex product with
// billions of edges; exact triangle statistics at any vertex or edge still
// cost only factor-sized work.
//
//   ./multi_factor [--n 300] [--k 3] [--seed 37]
#include <iostream>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);
  const vid n = cli.get_uint("n", 300);
  const std::size_t k = cli.get_uint("k", 3);
  const std::uint64_t seed = cli.get_uint("seed", 37);

  // Describe the whole product as one kron spec and let the registry build
  // the factor list — the chain itself stays implicit.
  std::string spec = "kron:";
  for (std::size_t i = 0; i < k; ++i) {
    spec += (i ? "x(" : "(") + std::string("hk:n=") + std::to_string(n) +
            ",m=3,p=0.6,seed=" + std::to_string(seed + i) + ")";
  }
  std::vector<Graph> factors = api::GeneratorRegistry::builtin().build_factors(
      api::GraphSpec::parse(spec));
  util::WallTimer timer;
  const kron::KronChain chain(factors);
  const count_t tau = chain.total_triangles();
  const double secs = timer.seconds();

  std::cout << "C = ";
  for (std::size_t i = 0; i < k; ++i) std::cout << (i ? " (x) A" : "A") << i + 1;
  std::cout << ", each factor " << n << " vertices:\n"
            << "  vertices:  "
            << util::human(static_cast<double>(chain.num_vertices())) << "\n"
            << "  edges:     "
            << util::human(static_cast<double>(chain.num_undirected_edges()))
            << "\n"
            << "  triangles: " << util::commas(tau) << " (exact, " << secs
            << " s)\n\n";

  std::cout << "point queries (exact):\n";
  for (const vid p : {vid{0}, chain.num_vertices() / 3,
                      chain.num_vertices() - 1}) {
    std::cout << "  vertex " << p << ": degree " << chain.nonloop_degree(p)
              << ", triangles " << chain.vertex_triangles(p) << "\n";
  }

  // Verify the whole machinery against a materialized small chain.
  std::vector<Graph> small;
  for (std::size_t i = 0; i < 3; ++i) {
    small.push_back(api::GeneratorRegistry::builtin().build(
        "hk:n=8,m=2,p=0.6,seed=" + std::to_string(seed + 100 + i)));
  }
  const kron::KronChain sc(small);
  const Graph m = sc.materialize();
  const auto t = triangle::participation_vertices(m);
  bool ok = sc.total_triangles() == triangle::count_total(m);
  for (vid p = 0; p < m.num_vertices(); ++p) {
    ok &= sc.vertex_triangles(p) == t[p];
  }
  std::cout << "\n3-factor verification against a materialized "
            << m.num_vertices() << "-vertex product: "
            << (ok ? "exact match" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
