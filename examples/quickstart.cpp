// Quickstart: describe the whole paper workflow — generate a Kronecker
// product, measure triangle statistics, validate against the closed forms —
// as ONE declarative RunPlan, execute it with api::run() (every analysis
// rides a single stream pass), and read the results off the RunReport.
// Then drop one level down to the oracle for per-edge ground truth.
//
//   ./quickstart
#include <iostream>

#include "kronotri.hpp"

int main() {
  using namespace kronotri;

  // The plan, in shorthand: factor A is the paper's Ex. 2 hub-cycle
  // (5 vertices, 8 edges, 4 triangles), factor B a triangle with self
  // loops (self loops boost triangle counts in the product, Rem. 3).
  // census rides the stream pass with a per-edge oracle census, degree
  // fans out alongside it through the same TeeSink, and validate checks
  // every vertex and edge count against the closed forms.
  api::RunPlan plan = api::RunPlan::parse(
      "kron:(hubcycle)x(clique:n=3,loops=1) census:edges=1 degree:measured=1 "
      "validate");
  plan.options.threads = 2;

  const api::RunReport report = api::run(plan);
  report.print(std::cout);

  // The report is a typed tree: pull one number back out.
  const count_t triangles =
      report.analyses[0].data.find("total_triangles")->as_uint();
  std::cout << "\nC has exactly " << triangles
            << " triangles (report pass: " << (report.pass ? "yes" : "no")
            << ")\n";

  // Everything above is also one CLI call:
  //   kronotri run --plan "kron:(hubcycle)x(clique:n=3,loops=1) \
  //                        census:edges=1 degree validate" --json report.json

  // Below the plan API: the oracle gives exact per-vertex / per-edge
  // ground truth straight from the factors.
  const auto& registry = api::GeneratorRegistry::builtin();
  const Graph a = registry.build("hubcycle");
  const Graph b = registry.build("clique:n=3,loops=1");
  const kron::TriangleOracle oracle(a, b);

  std::cout << "\nexact per-vertex ground truth (first block):\n";
  for (vid p = 0; p < b.num_vertices(); ++p) {
    std::cout << "  vertex " << p << ": degree " << oracle.degree(p)
              << ", triangles " << oracle.vertex_triangles(p) << "\n";
  }

  // The first few streamed edges, annotated via the batched pull API.
  std::cout << "\nfirst streamed edges with inline ground truth:\n";
  kron::EdgeStream stream(a, b);
  kron::EdgeRecord first[5];
  const std::size_t got = stream.next_batch(first);
  for (std::size_t i = 0; i < got; ++i) {
    std::cout << "  (" << first[i].u << "," << first[i].v
              << ") participates in "
              << *oracle.edge_triangles(first[i].u, first[i].v)
              << " triangles\n";
  }
  return report.pass ? 0 : 1;
}
