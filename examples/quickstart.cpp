// Quickstart: describe two factors as generator specs, form the (implicit)
// Kronecker product, stream its edges through a sink, and read exact
// triangle statistics off the oracle — the fifteen-line version of what the
// paper proposes, written against the pipeline facade.
//
//   ./quickstart
#include <iostream>

#include "kronotri.hpp"

int main() {
  using namespace kronotri;

  // Factor A: the paper's Ex. 2 hub-cycle (5 vertices, 8 edges, 4
  // triangles). Factor B: a triangle with self loops added — self loops
  // boost triangle counts in the product (Rem. 3). Both come from the
  // generator registry, so swapping families is a one-string change.
  const auto& registry = api::GeneratorRegistry::builtin();
  const Graph a = registry.build("hubcycle");
  const Graph b = registry.build("clique:n=3,loops=1");

  const kron::KronGraphView c(a, b);
  const kron::TriangleOracle oracle(a, b);

  std::cout << "C = A (hub-cycle) ⊗ B (K3 + I)\n"
            << "  vertices:   " << c.num_vertices() << "\n"
            << "  edges:      " << c.num_undirected_edges() << "\n"
            << "  triangles:  " << oracle.total_triangles() << "\n\n";

  std::cout << "exact per-vertex ground truth (first block):\n";
  for (vid p = 0; p < b.num_vertices(); ++p) {
    std::cout << "  vertex " << p << ": degree " << oracle.degree(p)
              << ", triangles " << oracle.vertex_triangles(p) << "\n";
  }

  // Edge-level ground truth during generation: pump the batched edge stream
  // through a triangle-census sink — every emitted edge is annotated with
  // its exact Δ(e) as it is generated.
  api::TriangleCensusSink census(oracle);
  api::stream_into(a, b, census);
  std::cout << "\nstreamed " << census.edges_consumed()
            << " stored entries; Σ Δ(e) = " << census.triangle_sum()
            << " (counts each triangle once per edge-direction slot)\n";

  // The first few streamed edges, annotated, via the batched pull API.
  std::cout << "\nfirst streamed edges with inline ground truth:\n";
  kron::EdgeStream stream(a, b);
  kron::EdgeRecord first[5];
  const std::size_t got = stream.next_batch(first);
  for (std::size_t i = 0; i < got; ++i) {
    std::cout << "  (" << first[i].u << "," << first[i].v
              << ") participates in "
              << *oracle.edge_triangles(first[i].u, first[i].v)
              << " triangles\n";
  }

  // Everything above came from factor-sized computations; verify one value
  // the slow way by materializing the egonet.
  const auto ego = analysis::extract_egonet(c, 0);
  std::cout << "\negonet check at vertex 0: " << analysis::center_triangles(ego)
            << " triangles (oracle said " << oracle.vertex_triangles(0)
            << ")\n";
  return 0;
}
