// Quickstart: build two small factors, form the (implicit) Kronecker
// product, and read exact triangle statistics off the oracle — the
// fifteen-line version of what the paper proposes.
//
//   ./quickstart
#include <iostream>

#include "kronotri.hpp"

int main() {
  using namespace kronotri;

  // Factor A: the paper's Ex. 2 hub-cycle (5 vertices, 8 edges, 4
  // triangles). Factor B: a triangle with self loops added — self loops
  // boost triangle counts in the product (Rem. 3).
  const Graph a = gen::hub_cycle();
  const Graph b = gen::clique(3).with_all_self_loops();

  const kron::KronGraphView c(a, b);
  const kron::TriangleOracle oracle(a, b);

  std::cout << "C = A (hub-cycle) ⊗ B (K3 + I)\n"
            << "  vertices:   " << c.num_vertices() << "\n"
            << "  edges:      " << c.num_undirected_edges() << "\n"
            << "  triangles:  " << oracle.total_triangles() << "\n\n";

  std::cout << "exact per-vertex ground truth (first block):\n";
  for (vid p = 0; p < b.num_vertices(); ++p) {
    std::cout << "  vertex " << p << ": degree " << oracle.degree(p)
              << ", triangles " << oracle.vertex_triangles(p) << "\n";
  }

  // Edge-level ground truth for the first few streamed edges — this is the
  // "validation during generation" workflow.
  std::cout << "\nfirst streamed edges with inline ground truth:\n";
  kron::EdgeStream stream(a, b);
  for (int i = 0; i < 5; ++i) {
    const auto e = stream.next();
    if (!e) break;
    std::cout << "  (" << e->u << "," << e->v << ") participates in "
              << *oracle.edge_triangles(e->u, e->v) << " triangles\n";
  }

  // Everything above came from factor-sized computations; verify one value
  // the slow way by materializing the egonet.
  const auto ego = analysis::extract_egonet(c, 0);
  std::cout << "\negonet check at vertex 0: " << analysis::center_triangles(ego)
            << " triangles (oracle said " << oracle.vertex_triangles(0)
            << ")\n";
  return 0;
}
