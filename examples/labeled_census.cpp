// Vertex-labeled triangle census demo (§V, Fig. 6): color a factor with
// three labels, census every labeled triangle type, and lift to a product
// graph via Thm 6/7 (labels inherited from the left factor).
//
//   ./labeled_census [--n 1500] [--labels 3] [--seed 13]
#include <iostream>
#include <string>

#include "kronotri.hpp"

int main(int argc, char** argv) {
  using namespace kronotri;
  const util::Cli cli(argc, argv);
  const vid n = cli.get_uint("n", 1500);
  const auto big_l = static_cast<std::uint32_t>(cli.get_uint("labels", 3));
  const std::uint64_t seed = cli.get_uint("seed", 13);

  const auto& registry = api::GeneratorRegistry::builtin();
  const Graph a = registry.build(
      "hk:n=" + std::to_string(n) + ",m=3,p=0.6,seed=" + std::to_string(seed));
  const triangle::Labeling lab = gen::random_labels(n, big_l, seed + 1);
  const Graph b = registry.build("clique:n=3,loops=1");

  static const char* kColor[] = {"red", "green", "blue", "cyan", "plum"};
  auto color = [&](std::uint32_t q) {
    return q < 5 ? std::string(kColor[q]) : "label" + std::to_string(q);
  };

  std::cout << "A: " << n << " vertices, " << a.num_undirected_edges()
            << " edges, " << big_l << " colors; C = A (x) (K3+I): "
            << n * 3 << " vertices\n\n";

  util::Table table({"type (center; others)", "factor total",
                     "product total (Thm 6)"});
  count_t factor_sum = 0;
  for (std::uint32_t q1 = 0; q1 < big_l; ++q1) {
    for (std::uint32_t q2 = 0; q2 < big_l; ++q2) {
      for (std::uint32_t q3 = q2; q3 < big_l; ++q3) {
        const auto tv =
            triangle::labeled_vertex_participation(a, lab, q1, q2, q3);
        count_t ft = 0;
        for (const count_t v : tv) ft += v;
        factor_sum += ft;
        const auto lifted =
            kron::labeled_vertex_triangles(a, lab, b, q1, q2, q3);
        table.row({color(q1) + "; {" + color(q2) + "," + color(q3) + "}",
                   util::commas(ft), util::commas(lifted.sum())});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nsum over all types = 3x triangles: "
            << util::commas(factor_sum) << " = 3 x "
            << util::commas(triangle::count_total(a)) << "\n";

  // Edge-level flavor (Thm 7): triangles at red-green edges whose third
  // vertex is blue, lifted to the product.
  if (big_l >= 3) {
    const auto de = kron::labeled_edge_triangles(a, lab, b, 0, 1, 2);
    std::cout << "\nΔ^(red,green;blue) on C: total "
              << util::commas(de.sum())
              << " (entry count at green→red product edges)\n";
  }
  return 0;
}
